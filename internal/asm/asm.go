// Package asm converts widget programs between their in-memory form
// (prog.Program) and a human-readable assembly text.
//
// The paper's widget pipeline is generator script → C source → compiler →
// native binary. This reproduction keeps the same three-stage shape: the
// perfprox generator emits assembly *text*, this package compiles it to a
// validated program, and the VM executes it. The textual stage is what the
// CLI shows when asked to dump a widget, and round-tripping through it is
// property-tested.
//
// Grammar (one statement per line, ';' starts a comment):
//
//	.mem <size> <seed>          memory declaration (decimal or 0x hex)
//	.block <n>                  start of basic block n (must be dense, in order)
//	<op> <operands>             instruction; operand shapes depend on the opcode:
//	    add r1, r2, r3          three-register ops
//	    mov r1, r2              two-register ops
//	    movi r1, -42            immediate ops
//	    addi r1, r2, 10
//	    load r1, [r2+8]         loads: dst, [base+disp]
//	    store [r2+8], r3        stores: [base+disp], src
//	    beq r1, r2, @4          conditional branches: a, b, @block
//	    jmp @0                  unconditional jump
//	    halt
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"hashcore/internal/isa"
	"hashcore/internal/prog"
)

// Error is a parse error with line information.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble parses source text into a validated program.
func Assemble(src string) (*prog.Program, error) {
	p := &prog.Program{MemSize: prog.DefaultMemSize}
	sawMem := false
	curBlock := -1

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		no := lineNo + 1

		if strings.HasPrefix(line, ".") {
			if err := parseDirective(p, line, no, &sawMem, &curBlock); err != nil {
				return nil, err
			}
			continue
		}
		if curBlock < 0 {
			return nil, errf(no, "instruction before any .block directive")
		}
		ins, err := parseInstr(line, no)
		if err != nil {
			return nil, err
		}
		blk := &p.Blocks[curBlock]
		blk.Instrs = append(blk.Instrs, ins)
	}
	if len(p.Blocks) == 0 {
		return nil, errf(0, "no blocks in source")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: assembled program invalid: %w", err)
	}
	return p, nil
}

func parseDirective(p *prog.Program, line string, no int, sawMem *bool, curBlock *int) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".mem":
		if *sawMem {
			return errf(no, "duplicate .mem directive")
		}
		if len(fields) != 3 {
			return errf(no, ".mem wants <size> <seed>, got %d operands", len(fields)-1)
		}
		size, err := parseUint(fields[1])
		if err != nil {
			return errf(no, "bad memory size %q: %v", fields[1], err)
		}
		seed, err := parseUint(fields[2])
		if err != nil {
			return errf(no, "bad memory seed %q: %v", fields[2], err)
		}
		p.MemSize = int(size)
		p.MemSeed = seed
		*sawMem = true
		return nil
	case ".block":
		if len(fields) != 2 {
			return errf(no, ".block wants a block number")
		}
		n, err := parseUint(fields[1])
		if err != nil {
			return errf(no, "bad block number %q: %v", fields[1], err)
		}
		if int(n) != len(p.Blocks) {
			return errf(no, "blocks must be declared densely in order: got %d, want %d",
				n, len(p.Blocks))
		}
		p.Blocks = append(p.Blocks, prog.Block{})
		*curBlock = int(n)
		return nil
	default:
		return errf(no, "unknown directive %q", fields[0])
	}
}

func parseInstr(line string, no int) (prog.Instr, error) {
	var ins prog.Instr
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := isa.FromMnemonic(mnemonic)
	if !ok {
		return ins, errf(no, "unknown mnemonic %q", mnemonic)
	}
	ins.Op = op

	var operands []string
	rest = strings.TrimSpace(rest)
	if rest != "" {
		operands = strings.Split(rest, ",")
		for i := range operands {
			operands[i] = strings.TrimSpace(operands[i])
		}
	}

	switch {
	case op == isa.OpHalt:
		if len(operands) != 0 {
			return ins, errf(no, "halt takes no operands")
		}
	case op == isa.OpJmp:
		if len(operands) != 1 {
			return ins, errf(no, "jmp wants @target")
		}
		t, err := parseTarget(operands[0])
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		ins.Target = t
	case op.IsCondBranch():
		if len(operands) != 3 {
			return ins, errf(no, "%s wants a, b, @target", op)
		}
		a, err := parseReg(operands[0], isa.RegInt)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		b, err := parseReg(operands[1], isa.RegInt)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		t, err := parseTarget(operands[2])
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		ins.A, ins.B, ins.Target = a, b, t
	case op == isa.OpLoad || op == isa.OpFLoad:
		if len(operands) != 2 {
			return ins, errf(no, "%s wants dst, [base+disp]", op)
		}
		dstFile, _, _ := op.Operands()
		dst, err := parseReg(operands[0], dstFile)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		base, disp, err := parseMemOperand(operands[1])
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		ins.Dst, ins.A, ins.Imm = dst, base, disp
	case op == isa.OpStore || op == isa.OpFStore:
		if len(operands) != 2 {
			return ins, errf(no, "%s wants [base+disp], src", op)
		}
		base, disp, err := parseMemOperand(operands[0])
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		_, _, bFile := op.Operands()
		src, err := parseReg(operands[1], bFile)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		ins.A, ins.B, ins.Imm = base, src, disp
	case op == isa.OpMovI:
		if len(operands) != 2 {
			return ins, errf(no, "movi wants dst, imm")
		}
		dst, err := parseReg(operands[0], isa.RegInt)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		imm, err := parseImm(operands[1])
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		ins.Dst, ins.Imm = dst, imm
	case op == isa.OpAddI:
		if len(operands) != 3 {
			return ins, errf(no, "addi wants dst, a, imm")
		}
		dst, err := parseReg(operands[0], isa.RegInt)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		a, err := parseReg(operands[1], isa.RegInt)
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		imm, err := parseImm(operands[2])
		if err != nil {
			return ins, errf(no, "%v", err)
		}
		ins.Dst, ins.A, ins.Imm = dst, a, imm
	default:
		// Pure register forms: count the used operand slots.
		dstFile, aFile, bFile := op.Operands()
		var want []isa.RegFile
		for _, f := range []isa.RegFile{dstFile, aFile, bFile} {
			if f != isa.RegNone {
				want = append(want, f)
			}
		}
		if len(operands) != len(want) {
			return ins, errf(no, "%s wants %d register operands, got %d", op, len(want), len(operands))
		}
		regs := make([]uint8, len(want))
		for i, operand := range operands {
			r, err := parseReg(operand, want[i])
			if err != nil {
				return ins, errf(no, "%v", err)
			}
			regs[i] = r
		}
		slot := 0
		if dstFile != isa.RegNone {
			ins.Dst = regs[slot]
			slot++
		}
		if aFile != isa.RegNone {
			ins.A = regs[slot]
			slot++
		}
		if bFile != isa.RegNone {
			ins.B = regs[slot]
		}
	}
	return ins, nil
}

func parseReg(s string, file isa.RegFile) (uint8, error) {
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	prefix := file.Prefix()
	if s[:1] != prefix {
		return 0, fmt.Errorf("register %q: want file %q", s, prefix)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= file.RegCount() {
		return 0, fmt.Errorf("register %q out of range for file %q", s, prefix)
	}
	return uint8(n), nil
}

func parseTarget(s string) (uint32, error) {
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("bad branch target %q: want @block", s)
	}
	n, err := strconv.ParseUint(s[1:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad branch target %q: %v", s, err)
	}
	return uint32(n), nil
}

// parseMemOperand parses "[rN+disp]", "[rN-disp]" or "[rN]".
func parseMemOperand(s string) (base uint8, disp int64, err error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	regPart := inner
	if sep > 0 {
		regPart = inner[:sep]
	}
	base, err = parseReg(strings.TrimSpace(regPart), isa.RegInt)
	if err != nil {
		return 0, 0, err
	}
	if sep > 0 {
		disp, err = parseImm(strings.TrimSpace(inner[sep:]))
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q: %v", s, err)
		}
	}
	return base, disp, nil
}

func parseImm(s string) (int64, error) {
	// Support an explicit leading '+' from memory-operand splitting.
	s = strings.TrimPrefix(s, "+")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		neg := strings.HasPrefix(s, "-")
		hexPart := strings.TrimPrefix(strings.TrimPrefix(s, "-"), "0x")
		u, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			return 0, err
		}
		v := int64(u)
		if neg {
			v = -v
		}
		return v, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

func parseUint(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}
