// Package isa defines the synthetic instruction set that HashCore widgets
// are expressed in.
//
// The paper generates widgets as C programs compiled to native x86. A
// portable, stdlib-only reproduction cannot JIT pseudo-random x86, so this
// package defines a register machine whose instruction classes are exactly
// the computational-resource classes the paper's Table I allocates hash-seed
// noise to — integer ALU, integer multiply, floating-point ALU, loads,
// stores, and branches — plus a vector class covering the "vector
// processing units" the paper lists among the targeted structures.
//
// The machine has:
//   - 16 64-bit integer registers r0..r15
//   - 16 64-bit floating-point registers f0..f15
//   - 8 256-bit vector registers v0..v7 (4 x 64-bit lanes)
//   - a byte-addressable scratch memory (power-of-two size, masked
//     addressing, so every generated access is safe)
//
// Control flow is expressed at the basic-block level (see internal/prog):
// branch instructions name a target block, and only the last instruction of
// a block may be a control instruction.
package isa

import "fmt"

// Register file sizes.
const (
	NumIntRegs = 16
	NumFPRegs  = 16
	NumVecRegs = 8
	VecLanes   = 4
)

// Class is an instruction resource class. The first six classes correspond
// one-to-one to the noise fields of the paper's Table I.
type Class uint8

// Instruction classes.
const (
	ClassIntALU Class = iota + 1
	ClassIntMul
	ClassFPALU
	ClassLoad
	ClassStore
	ClassBranch
	ClassVector
	numClasses
)

// NumClasses is one past the largest Class value. Arrays indexed directly
// by Class (per-class counters, budgets) use this as their length, which
// keeps the hot accounting paths free of map lookups.
const NumClasses = int(numClasses)

// Classes lists every class in a stable order (useful for iteration in
// profiles and reports).
var Classes = [...]Class{
	ClassIntALU, ClassIntMul, ClassFPALU, ClassLoad, ClassStore, ClassBranch, ClassVector,
}

// String returns the lower-case class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassIntALU:
		return "intalu"
	case ClassIntMul:
		return "intmul"
	case ClassFPALU:
		return "fpalu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassVector:
		return "vector"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Opcode identifies an operation. Opcodes are stable across versions: they
// are serialized into widget binaries, so new opcodes must only ever be
// appended.
type Opcode uint8

// Opcodes are declared with explicit values: they form the binary widget
// encoding, so their numbering is part of the wire format and must never
// shift when the set is extended.
const (
	OpInvalid Opcode = 0

	// Integer ALU.
	OpAdd Opcode = 1 // dst = a + b
	OpSub Opcode = 2 // dst = a - b
	OpAnd Opcode = 3 // dst = a & b
	OpOr  Opcode = 4 // dst = a | b
	OpXor Opcode = 5 // dst = a ^ b
	OpShl Opcode = 6 // dst = a << (b & 63)
	OpShr Opcode = 7 // dst = a >> (b & 63)
	OpRor Opcode = 8 // dst = a rotated right by (b & 63)

	OpCmpLT Opcode = 9  // dst = (a < b) ? 1 : 0  (unsigned)
	OpCmpEQ Opcode = 10 // dst = (a == b) ? 1 : 0
	OpMov   Opcode = 11 // dst = a
	OpMovI  Opcode = 12 // dst = imm
	OpAddI  Opcode = 13 // dst = a + imm

	// Integer multiply unit.
	OpMul  Opcode = 16 // dst = low64(a * b)
	OpMulH Opcode = 17 // dst = high64(a * b) (unsigned)

	// Floating-point ALU. FP registers hold IEEE-754 float64; NaNs are
	// canonicalized after every operation for cross-platform determinism.
	OpFAdd  Opcode = 24 // fdst = fa + fb
	OpFSub  Opcode = 25 // fdst = fa - fb
	OpFMul  Opcode = 26 // fdst = fa * fb
	OpFDiv  Opcode = 27 // fdst = fa / fb
	OpFSqrt Opcode = 28 // fdst = sqrt(|fa|)
	OpFMov  Opcode = 29 // fdst = fa
	OpFCvt  Opcode = 30 // fdst = float64(int64(ra))
	OpFToI  Opcode = 31 // dst  = clamped int64(fa)

	// Memory. Addresses are (ra + imm) masked to the scratch size and
	// 8-byte aligned; values are little-endian uint64.
	OpLoad   Opcode = 40 // dst  = mem[ra + imm]
	OpFLoad  Opcode = 41 // fdst = mem[ra + imm] (as float64 bits, canonicalized)
	OpStore  Opcode = 42 // mem[ra + imm] = rb
	OpFStore Opcode = 43 // mem[ra + imm] = fb (bits)

	// Control flow. Target is a block index carried beside the opcode.
	OpBeq  Opcode = 48 // if ra == rb jump to target block
	OpBne  Opcode = 49 // if ra != rb jump
	OpBlt  Opcode = 50 // if ra <  rb (unsigned) jump
	OpBge  Opcode = 51 // if ra >= rb (unsigned) jump
	OpJmp  Opcode = 52 // unconditional jump
	OpHalt Opcode = 53 // stop execution

	// Vector unit: 4-lane 64-bit SIMD.
	OpVAdd   Opcode = 56 // vdst = va + vb (lane-wise)
	OpVXor   Opcode = 57 // vdst = va ^ vb
	OpVMul   Opcode = 58 // vdst = low64(va * vb) lane-wise
	OpVBcast Opcode = 59 // vdst = broadcast(ra)
	OpVRed   Opcode = 60 // dst  = xor-fold of va's lanes
)

// Fused superinstructions. These are execution-internal opcodes produced by
// the VM's peephole fuser for hot adjacent instruction pairs; they are NOT
// part of the widget wire format (Valid reports false), never appear in a
// prog.Program, and — unlike architectural opcodes — may be renumbered
// freely. They sit directly above the architectural opcode space so the
// interpreter's dispatch switch stays dense; if the architectural space
// ever grows past FuseBase, bump FuseBase.
//
// Each fused opcode retires as TWO architectural instructions (its class
// accounting is the sum of both halves' classes), and its semantics are
// exactly "first half, then second half" — fusion only removes dispatch
// overhead, never reorders or combines arithmetic.
const (
	// FuseBase is the first fused opcode value.
	FuseBase Opcode = 64

	OpFuseCmpLTBeq Opcode = 64 // cmplt d,a,b ; beq x,y -> T
	OpFuseCmpLTBne Opcode = 65 // cmplt d,a,b ; bne x,y -> T
	OpFuseCmpEQBeq Opcode = 66 // cmpeq d,a,b ; beq x,y -> T
	OpFuseCmpEQBne Opcode = 67 // cmpeq d,a,b ; bne x,y -> T
	OpFuseAddIBeq  Opcode = 68 // addi d,a,imm ; beq x,y -> T
	OpFuseAddIBne  Opcode = 69 // addi d,a,imm ; bne x,y -> T
	OpFuseMovIAdd  Opcode = 70 // movi m,imm ; add d,a,b
	OpFuseMovISub  Opcode = 71 // movi m,imm ; sub d,a,b
	OpFuseMovIXor  Opcode = 72 // movi m,imm ; xor d,a,b
	OpFuseMovIAnd  Opcode = 73 // movi m,imm ; and d,a,b
	OpFuseMovIOr   Opcode = 74 // movi m,imm ; or  d,a,b
	OpFuseAddILoad Opcode = 75 // addi d,a,imm ; load d2 = mem[a2 + disp]
	OpFuseAddIStor Opcode = 76 // addi d,a,imm ; store mem[a2 + disp] = b2
	OpFuseMulAdd   Opcode = 77 // mul d,a,b ; add d2,a2,b2
	OpFuseFMulFAdd Opcode = 78 // fmul fd,fa,fb ; fadd fd2,fa2,fb2
	OpFuseRorAnd   Opcode = 79 // ror d,a,b ; and d2,a2,b2 (diamond condition prefix)

	// The x+jmp family: every non-control opcode fuses with a following
	// unconditional jump (generated branch-diamond arms always end with
	// one). FuseJmpBase + the family's index below. The encoding is
	// uniform: the first half keeps its normal dst/a/b/imm fields and the
	// jump's target block lands in target.
	FuseJmpBase Opcode = 80

	OpFuseAddJmp    Opcode = 80
	OpFuseSubJmp    Opcode = 81
	OpFuseAndJmp    Opcode = 82
	OpFuseOrJmp     Opcode = 83
	OpFuseXorJmp    Opcode = 84
	OpFuseShlJmp    Opcode = 85
	OpFuseShrJmp    Opcode = 86
	OpFuseRorJmp    Opcode = 87
	OpFuseCmpLTJmp  Opcode = 88
	OpFuseCmpEQJmp  Opcode = 89
	OpFuseMovJmp    Opcode = 90
	OpFuseMovIJmp   Opcode = 91
	OpFuseAddIJmp   Opcode = 92
	OpFuseMulJmp    Opcode = 93
	OpFuseMulHJmp   Opcode = 94
	OpFuseFAddJmp   Opcode = 95
	OpFuseFSubJmp   Opcode = 96
	OpFuseFMulJmp   Opcode = 97
	OpFuseFDivJmp   Opcode = 98
	OpFuseFSqrtJmp  Opcode = 99
	OpFuseFMovJmp   Opcode = 100
	OpFuseFCvtJmp   Opcode = 101
	OpFuseFToIJmp   Opcode = 102
	OpFuseLoadJmp   Opcode = 103
	OpFuseFLoadJmp  Opcode = 104
	OpFuseStoreJmp  Opcode = 105
	OpFuseFStoreJmp Opcode = 106
	OpFuseVAddJmp   Opcode = 107
	OpFuseVXorJmp   Opcode = 108
	OpFuseVMulJmp   Opcode = 109
	OpFuseVBcastJmp Opcode = 110
	OpFuseVRedJmp   Opcode = 111

	fuseJmpEnd Opcode = 112 // one past the last x+jmp opcode

	// Generic ALU pair family: the three highest-weight integer-ALU filler
	// opcodes fused pairwise ({add,sub,xor} x {add,sub,xor}), covering the
	// most frequent adjacencies inside straight-line filler runs. Encoding
	// matches mul+add: first op in dst/a/b, second packed into aux.
	OpFuseAddAdd Opcode = 112
	OpFuseAddSub Opcode = 113
	OpFuseAddXor Opcode = 114
	OpFuseSubAdd Opcode = 115
	OpFuseSubSub Opcode = 116
	OpFuseSubXor Opcode = 117
	OpFuseXorAdd Opcode = 118
	OpFuseXorSub Opcode = 119
	OpFuseXorXor Opcode = 120

	fuseEnd Opcode = 121 // one past the last fused opcode
)

// IsFusedJmp reports whether op is an x+jmp superinstruction.
func (op Opcode) IsFusedJmp() bool { return op >= FuseJmpBase && op < fuseJmpEnd }

// fusePairs maps each fused opcode to the architectural pair it replaces.
// This table is the single source of truth for what fuses: Fuse and
// FuseParts are both derived from it.
var fusePairs = [...]struct {
	fused, first, second Opcode
}{
	{OpFuseCmpLTBeq, OpCmpLT, OpBeq},
	{OpFuseCmpLTBne, OpCmpLT, OpBne},
	{OpFuseCmpEQBeq, OpCmpEQ, OpBeq},
	{OpFuseCmpEQBne, OpCmpEQ, OpBne},
	{OpFuseAddIBeq, OpAddI, OpBeq},
	{OpFuseAddIBne, OpAddI, OpBne},
	{OpFuseMovIAdd, OpMovI, OpAdd},
	{OpFuseMovISub, OpMovI, OpSub},
	{OpFuseMovIXor, OpMovI, OpXor},
	{OpFuseMovIAnd, OpMovI, OpAnd},
	{OpFuseMovIOr, OpMovI, OpOr},
	{OpFuseAddILoad, OpAddI, OpLoad},
	{OpFuseAddIStor, OpAddI, OpStore},
	{OpFuseMulAdd, OpMul, OpAdd},
	{OpFuseFMulFAdd, OpFMul, OpFAdd},
	{OpFuseRorAnd, OpRor, OpAnd},

	{OpFuseAddJmp, OpAdd, OpJmp},
	{OpFuseSubJmp, OpSub, OpJmp},
	{OpFuseAndJmp, OpAnd, OpJmp},
	{OpFuseOrJmp, OpOr, OpJmp},
	{OpFuseXorJmp, OpXor, OpJmp},
	{OpFuseShlJmp, OpShl, OpJmp},
	{OpFuseShrJmp, OpShr, OpJmp},
	{OpFuseRorJmp, OpRor, OpJmp},
	{OpFuseCmpLTJmp, OpCmpLT, OpJmp},
	{OpFuseCmpEQJmp, OpCmpEQ, OpJmp},
	{OpFuseMovJmp, OpMov, OpJmp},
	{OpFuseMovIJmp, OpMovI, OpJmp},
	{OpFuseAddIJmp, OpAddI, OpJmp},
	{OpFuseMulJmp, OpMul, OpJmp},
	{OpFuseMulHJmp, OpMulH, OpJmp},
	{OpFuseFAddJmp, OpFAdd, OpJmp},
	{OpFuseFSubJmp, OpFSub, OpJmp},
	{OpFuseFMulJmp, OpFMul, OpJmp},
	{OpFuseFDivJmp, OpFDiv, OpJmp},
	{OpFuseFSqrtJmp, OpFSqrt, OpJmp},
	{OpFuseFMovJmp, OpFMov, OpJmp},
	{OpFuseFCvtJmp, OpFCvt, OpJmp},
	{OpFuseFToIJmp, OpFToI, OpJmp},
	{OpFuseLoadJmp, OpLoad, OpJmp},
	{OpFuseFLoadJmp, OpFLoad, OpJmp},
	{OpFuseStoreJmp, OpStore, OpJmp},
	{OpFuseFStoreJmp, OpFStore, OpJmp},
	{OpFuseVAddJmp, OpVAdd, OpJmp},
	{OpFuseVXorJmp, OpVXor, OpJmp},
	{OpFuseVMulJmp, OpVMul, OpJmp},
	{OpFuseVBcastJmp, OpVBcast, OpJmp},
	{OpFuseVRedJmp, OpVRed, OpJmp},

	{OpFuseAddAdd, OpAdd, OpAdd},
	{OpFuseAddSub, OpAdd, OpSub},
	{OpFuseAddXor, OpAdd, OpXor},
	{OpFuseSubAdd, OpSub, OpAdd},
	{OpFuseSubSub, OpSub, OpSub},
	{OpFuseSubXor, OpSub, OpXor},
	{OpFuseXorAdd, OpXor, OpAdd},
	{OpFuseXorSub, OpXor, OpSub},
	{OpFuseXorXor, OpXor, OpXor},
}

// fuseLUT is the dense pair -> fused-opcode lookup used by the VM's load-time
// fuser (architectural opcodes are < FuseBase, so first*FuseBase+second fits).
var fuseLUT = func() [int(FuseBase) * int(FuseBase)]Opcode {
	var t [int(FuseBase) * int(FuseBase)]Opcode
	for _, p := range fusePairs {
		t[int(p.first)*int(FuseBase)+int(p.second)] = p.fused
	}
	return t
}()

// fuseInfo maps a fused opcode to its halves and mnemonic.
var fuseInfo = func() [fuseEnd]struct {
	first, second Opcode
	name          string
} {
	var t [fuseEnd]struct {
		first, second Opcode
		name          string
	}
	for _, p := range fusePairs {
		t[p.fused].first = p.first
		t[p.fused].second = p.second
		t[p.fused].name = opcodes[p.first].name + "." + opcodes[p.second].name
	}
	return t
}()

// IsFused reports whether op is a fused superinstruction.
func (op Opcode) IsFused() bool { return op >= FuseBase && op < fuseEnd && fuseInfo[op].first != 0 }

// Fuse returns the fused superinstruction replacing the adjacent pair
// (first, second), if the pair is fusible by opcode. Callers may impose
// additional operand constraints (the VM does, for immediate ranges).
func Fuse(first, second Opcode) (Opcode, bool) {
	if first >= FuseBase || second >= FuseBase {
		return OpInvalid, false
	}
	f := fuseLUT[int(first)*int(FuseBase)+int(second)]
	return f, f != OpInvalid
}

// FuseParts returns the architectural pair a fused opcode replaces.
func (op Opcode) FuseParts() (first, second Opcode, ok bool) {
	if !op.IsFused() {
		return OpInvalid, OpInvalid, false
	}
	return fuseInfo[op].first, fuseInfo[op].second, true
}

// opcodeInfo captures static properties of an opcode.
type opcodeInfo struct {
	name  string
	class Class
}

// opcodes is the opcode metadata table; absent entries are invalid opcodes.
var opcodes = map[Opcode]opcodeInfo{
	OpAdd:   {"add", ClassIntALU},
	OpSub:   {"sub", ClassIntALU},
	OpAnd:   {"and", ClassIntALU},
	OpOr:    {"or", ClassIntALU},
	OpXor:   {"xor", ClassIntALU},
	OpShl:   {"shl", ClassIntALU},
	OpShr:   {"shr", ClassIntALU},
	OpRor:   {"ror", ClassIntALU},
	OpCmpLT: {"cmplt", ClassIntALU},
	OpCmpEQ: {"cmpeq", ClassIntALU},
	OpMov:   {"mov", ClassIntALU},
	OpMovI:  {"movi", ClassIntALU},
	OpAddI:  {"addi", ClassIntALU},

	OpMul:  {"mul", ClassIntMul},
	OpMulH: {"mulh", ClassIntMul},

	OpFAdd:  {"fadd", ClassFPALU},
	OpFSub:  {"fsub", ClassFPALU},
	OpFMul:  {"fmul", ClassFPALU},
	OpFDiv:  {"fdiv", ClassFPALU},
	OpFSqrt: {"fsqrt", ClassFPALU},
	OpFMov:  {"fmov", ClassFPALU},
	OpFCvt:  {"fcvt", ClassFPALU},
	OpFToI:  {"ftoi", ClassFPALU},

	OpLoad:   {"load", ClassLoad},
	OpFLoad:  {"fload", ClassLoad},
	OpStore:  {"store", ClassStore},
	OpFStore: {"fstore", ClassStore},

	OpBeq:  {"beq", ClassBranch},
	OpBne:  {"bne", ClassBranch},
	OpBlt:  {"blt", ClassBranch},
	OpBge:  {"bge", ClassBranch},
	OpJmp:  {"jmp", ClassBranch},
	OpHalt: {"halt", ClassBranch},

	OpVAdd:   {"vadd", ClassVector},
	OpVXor:   {"vxor", ClassVector},
	OpVMul:   {"vmul", ClassVector},
	OpVBcast: {"vbcast", ClassVector},
	OpVRed:   {"vred", ClassVector},
}

// mnemonics maps assembly mnemonics back to opcodes (built once, immutable
// afterwards; safe for concurrent reads).
var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opcodes))
	for op, info := range opcodes {
		m[info.name] = op
	}
	return m
}()

// classTable is the dense opcode -> class table backing ClassOf. The map is
// the source of truth; the array keeps the VM's decode loop (one ClassOf per
// decoded instruction) free of map-hashing overhead.
var classTable = func() [256]Class {
	var t [256]Class
	for op, info := range opcodes {
		t[op] = info.class
	}
	return t
}()

// validTable is the dense opcode -> validity table backing Valid; like
// classTable it exists so per-instruction validation passes avoid map
// lookups (Validate runs over every instruction of every generated widget,
// once per hash).
var validTable = func() [256]bool {
	var t [256]bool
	for op := range opcodes {
		t[op] = true
	}
	return t
}()

// Valid reports whether op is a defined architectural opcode. Fused
// superinstructions are deliberately NOT valid: they exist only inside the
// VM's decoded code and must never appear in a serialized program.
func (op Opcode) Valid() bool {
	return validTable[op]
}

// OpMeta packs every per-opcode fact a validation sweep needs into one
// word, so hot per-instruction loops (prog.Builder's materialize runs once
// per generated instruction per hash) pay a single table load instead of
// separate Valid/IsControl/ClassOf/OperandLimits lookups. Layout: bytes
// 0-2 hold the exclusive dst/a/b operand bounds, byte 3 the class, bit 32
// validity and bit 33 the control-flow flag.
type OpMeta uint64

// OpMeta flag bits.
const (
	MetaValid   OpMeta = 1 << 32
	MetaControl OpMeta = 1 << 33
)

// LimDst returns the exclusive upper bound for the dst operand index.
func (m OpMeta) LimDst() uint8 { return uint8(m) }

// LimA returns the exclusive upper bound for the a operand index.
func (m OpMeta) LimA() uint8 { return uint8(m >> 8) }

// LimB returns the exclusive upper bound for the b operand index.
func (m OpMeta) LimB() uint8 { return uint8(m >> 16) }

// Class returns the opcode's resource class (0 for invalid opcodes).
func (m OpMeta) Class() Class { return Class(uint8(m >> 24)) }

// metaTable is derived from the canonical predicates; TestOpMetaMatches
// pins the packing to them for every possible opcode byte.
var metaTable = func() [256]OpMeta {
	var t [256]OpMeta
	for i := 0; i < 256; i++ {
		op := Opcode(i)
		if !op.Valid() {
			continue
		}
		dst, a, b := op.OperandLimits()
		m := OpMeta(dst) | OpMeta(a)<<8 | OpMeta(b)<<16 |
			OpMeta(op.ClassOf())<<24 | MetaValid
		if op.IsControl() {
			m |= MetaControl
		}
		t[i] = m
	}
	return t
}()

// MetaOf returns the packed metadata word for op (zero — invalid, no
// operands permitted — for undefined opcodes).
func MetaOf(op Opcode) OpMeta {
	return metaTable[op]
}

// String returns the assembly mnemonic for op. Fused superinstructions
// render as "first.second" (e.g. "cmplt.bne") for debugging output.
func (op Opcode) String() string {
	if info, ok := opcodes[op]; ok {
		return info.name
	}
	if op.IsFused() {
		return fuseInfo[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ClassOf returns the resource class of op, or 0 for invalid opcodes.
// Fused superinstructions have no single class (they retire two
// instructions of possibly different classes) and report 0; per-class
// accounting for fused code comes from per-block tallies computed over the
// unfused instruction stream.
func (op Opcode) ClassOf() Class {
	return classTable[op]
}

// FromMnemonic returns the opcode for an assembly mnemonic.
func FromMnemonic(name string) (Opcode, bool) {
	op, ok := mnemonics[name]
	return op, ok
}

// IsControl reports whether op redirects or ends control flow (and so may
// only appear as a block terminator).
func (op Opcode) IsControl() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpHalt:
		return true
	default:
		return false
	}
}

// IsCondBranch reports whether op is a conditional branch.
func (op Opcode) IsCondBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	default:
		return false
	}
}

// HasImm reports whether op uses its immediate operand.
func (op Opcode) HasImm() bool {
	switch op {
	case OpMovI, OpAddI, OpLoad, OpFLoad, OpStore, OpFStore:
		return true
	default:
		return false
	}
}

// RegFile identifies which register file an operand index refers to.
type RegFile uint8

// Register files.
const (
	RegNone RegFile = iota
	RegInt
	RegFP
	RegVec
)

// Operands describes the register files of an opcode's dst, a and b
// operands (RegNone when unused).
func (op Opcode) Operands() (dst, a, b RegFile) {
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpRor,
		OpCmpLT, OpCmpEQ, OpMul, OpMulH:
		return RegInt, RegInt, RegInt
	case OpMov:
		return RegInt, RegInt, RegNone
	case OpMovI:
		return RegInt, RegNone, RegNone
	case OpAddI:
		return RegInt, RegInt, RegNone
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		return RegFP, RegFP, RegFP
	case OpFSqrt, OpFMov:
		return RegFP, RegFP, RegNone
	case OpFCvt:
		return RegFP, RegInt, RegNone
	case OpFToI:
		return RegInt, RegFP, RegNone
	case OpLoad:
		return RegInt, RegInt, RegNone
	case OpFLoad:
		return RegFP, RegInt, RegNone
	case OpStore:
		return RegNone, RegInt, RegInt
	case OpFStore:
		return RegNone, RegInt, RegFP
	case OpBeq, OpBne, OpBlt, OpBge:
		return RegNone, RegInt, RegInt
	case OpJmp, OpHalt:
		return RegNone, RegNone, RegNone
	case OpVAdd, OpVXor, OpVMul:
		return RegVec, RegVec, RegVec
	case OpVBcast:
		return RegVec, RegInt, RegNone
	case OpVRed:
		return RegInt, RegVec, RegNone
	default:
		return RegNone, RegNone, RegNone
	}
}

// operandLimits is a dense per-opcode table of exclusive upper bounds for
// the dst/a/b operand indices (1 for unused operands, 0 for invalid
// opcodes). It exists so per-instruction validation avoids re-deriving
// register files through the Operands switch on every instruction of every
// generated widget.
var operandLimits = func() [256][3]uint8 {
	var t [256][3]uint8
	for op := range opcodes {
		dst, a, b := op.Operands()
		lim := func(f RegFile) uint8 {
			if f == RegNone {
				return 1
			}
			return uint8(f.RegCount())
		}
		t[op] = [3]uint8{lim(dst), lim(a), lim(b)}
	}
	return t
}()

// OperandLimits returns the exclusive upper bounds for op's dst, a and b
// register indices (1 for unused operands — they must be encoded as 0 —
// and 0 for invalid opcodes, rejecting everything).
func (op Opcode) OperandLimits() (dst, a, b uint8) {
	l := &operandLimits[op]
	return l[0], l[1], l[2]
}

// RegCount returns the number of registers in file f.
func (f RegFile) RegCount() int {
	switch f {
	case RegInt:
		return NumIntRegs
	case RegFP:
		return NumFPRegs
	case RegVec:
		return NumVecRegs
	default:
		return 0
	}
}

// Prefix returns the assembly register prefix for file f ("r", "f", "v").
func (f RegFile) Prefix() string {
	switch f {
	case RegInt:
		return "r"
	case RegFP:
		return "f"
	case RegVec:
		return "v"
	default:
		return "?"
	}
}
