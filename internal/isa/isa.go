// Package isa defines the synthetic instruction set that HashCore widgets
// are expressed in.
//
// The paper generates widgets as C programs compiled to native x86. A
// portable, stdlib-only reproduction cannot JIT pseudo-random x86, so this
// package defines a register machine whose instruction classes are exactly
// the computational-resource classes the paper's Table I allocates hash-seed
// noise to — integer ALU, integer multiply, floating-point ALU, loads,
// stores, and branches — plus a vector class covering the "vector
// processing units" the paper lists among the targeted structures.
//
// The machine has:
//   - 16 64-bit integer registers r0..r15
//   - 16 64-bit floating-point registers f0..f15
//   - 8 256-bit vector registers v0..v7 (4 x 64-bit lanes)
//   - a byte-addressable scratch memory (power-of-two size, masked
//     addressing, so every generated access is safe)
//
// Control flow is expressed at the basic-block level (see internal/prog):
// branch instructions name a target block, and only the last instruction of
// a block may be a control instruction.
package isa

import "fmt"

// Register file sizes.
const (
	NumIntRegs = 16
	NumFPRegs  = 16
	NumVecRegs = 8
	VecLanes   = 4
)

// Class is an instruction resource class. The first six classes correspond
// one-to-one to the noise fields of the paper's Table I.
type Class uint8

// Instruction classes.
const (
	ClassIntALU Class = iota + 1
	ClassIntMul
	ClassFPALU
	ClassLoad
	ClassStore
	ClassBranch
	ClassVector
	numClasses
)

// NumClasses is one past the largest Class value. Arrays indexed directly
// by Class (per-class counters, budgets) use this as their length, which
// keeps the hot accounting paths free of map lookups.
const NumClasses = int(numClasses)

// Classes lists every class in a stable order (useful for iteration in
// profiles and reports).
var Classes = [...]Class{
	ClassIntALU, ClassIntMul, ClassFPALU, ClassLoad, ClassStore, ClassBranch, ClassVector,
}

// String returns the lower-case class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassIntALU:
		return "intalu"
	case ClassIntMul:
		return "intmul"
	case ClassFPALU:
		return "fpalu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassVector:
		return "vector"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Opcode identifies an operation. Opcodes are stable across versions: they
// are serialized into widget binaries, so new opcodes must only ever be
// appended.
type Opcode uint8

// Opcodes are declared with explicit values: they form the binary widget
// encoding, so their numbering is part of the wire format and must never
// shift when the set is extended.
const (
	OpInvalid Opcode = 0

	// Integer ALU.
	OpAdd Opcode = 1 // dst = a + b
	OpSub Opcode = 2 // dst = a - b
	OpAnd Opcode = 3 // dst = a & b
	OpOr  Opcode = 4 // dst = a | b
	OpXor Opcode = 5 // dst = a ^ b
	OpShl Opcode = 6 // dst = a << (b & 63)
	OpShr Opcode = 7 // dst = a >> (b & 63)
	OpRor Opcode = 8 // dst = a rotated right by (b & 63)

	OpCmpLT Opcode = 9  // dst = (a < b) ? 1 : 0  (unsigned)
	OpCmpEQ Opcode = 10 // dst = (a == b) ? 1 : 0
	OpMov   Opcode = 11 // dst = a
	OpMovI  Opcode = 12 // dst = imm
	OpAddI  Opcode = 13 // dst = a + imm

	// Integer multiply unit.
	OpMul  Opcode = 16 // dst = low64(a * b)
	OpMulH Opcode = 17 // dst = high64(a * b) (unsigned)

	// Floating-point ALU. FP registers hold IEEE-754 float64; NaNs are
	// canonicalized after every operation for cross-platform determinism.
	OpFAdd  Opcode = 24 // fdst = fa + fb
	OpFSub  Opcode = 25 // fdst = fa - fb
	OpFMul  Opcode = 26 // fdst = fa * fb
	OpFDiv  Opcode = 27 // fdst = fa / fb
	OpFSqrt Opcode = 28 // fdst = sqrt(|fa|)
	OpFMov  Opcode = 29 // fdst = fa
	OpFCvt  Opcode = 30 // fdst = float64(int64(ra))
	OpFToI  Opcode = 31 // dst  = clamped int64(fa)

	// Memory. Addresses are (ra + imm) masked to the scratch size and
	// 8-byte aligned; values are little-endian uint64.
	OpLoad   Opcode = 40 // dst  = mem[ra + imm]
	OpFLoad  Opcode = 41 // fdst = mem[ra + imm] (as float64 bits, canonicalized)
	OpStore  Opcode = 42 // mem[ra + imm] = rb
	OpFStore Opcode = 43 // mem[ra + imm] = fb (bits)

	// Control flow. Target is a block index carried beside the opcode.
	OpBeq  Opcode = 48 // if ra == rb jump to target block
	OpBne  Opcode = 49 // if ra != rb jump
	OpBlt  Opcode = 50 // if ra <  rb (unsigned) jump
	OpBge  Opcode = 51 // if ra >= rb (unsigned) jump
	OpJmp  Opcode = 52 // unconditional jump
	OpHalt Opcode = 53 // stop execution

	// Vector unit: 4-lane 64-bit SIMD.
	OpVAdd   Opcode = 56 // vdst = va + vb (lane-wise)
	OpVXor   Opcode = 57 // vdst = va ^ vb
	OpVMul   Opcode = 58 // vdst = low64(va * vb) lane-wise
	OpVBcast Opcode = 59 // vdst = broadcast(ra)
	OpVRed   Opcode = 60 // dst  = xor-fold of va's lanes
)

// opcodeInfo captures static properties of an opcode.
type opcodeInfo struct {
	name  string
	class Class
}

// opcodes is the opcode metadata table; absent entries are invalid opcodes.
var opcodes = map[Opcode]opcodeInfo{
	OpAdd:   {"add", ClassIntALU},
	OpSub:   {"sub", ClassIntALU},
	OpAnd:   {"and", ClassIntALU},
	OpOr:    {"or", ClassIntALU},
	OpXor:   {"xor", ClassIntALU},
	OpShl:   {"shl", ClassIntALU},
	OpShr:   {"shr", ClassIntALU},
	OpRor:   {"ror", ClassIntALU},
	OpCmpLT: {"cmplt", ClassIntALU},
	OpCmpEQ: {"cmpeq", ClassIntALU},
	OpMov:   {"mov", ClassIntALU},
	OpMovI:  {"movi", ClassIntALU},
	OpAddI:  {"addi", ClassIntALU},

	OpMul:  {"mul", ClassIntMul},
	OpMulH: {"mulh", ClassIntMul},

	OpFAdd:  {"fadd", ClassFPALU},
	OpFSub:  {"fsub", ClassFPALU},
	OpFMul:  {"fmul", ClassFPALU},
	OpFDiv:  {"fdiv", ClassFPALU},
	OpFSqrt: {"fsqrt", ClassFPALU},
	OpFMov:  {"fmov", ClassFPALU},
	OpFCvt:  {"fcvt", ClassFPALU},
	OpFToI:  {"ftoi", ClassFPALU},

	OpLoad:   {"load", ClassLoad},
	OpFLoad:  {"fload", ClassLoad},
	OpStore:  {"store", ClassStore},
	OpFStore: {"fstore", ClassStore},

	OpBeq:  {"beq", ClassBranch},
	OpBne:  {"bne", ClassBranch},
	OpBlt:  {"blt", ClassBranch},
	OpBge:  {"bge", ClassBranch},
	OpJmp:  {"jmp", ClassBranch},
	OpHalt: {"halt", ClassBranch},

	OpVAdd:   {"vadd", ClassVector},
	OpVXor:   {"vxor", ClassVector},
	OpVMul:   {"vmul", ClassVector},
	OpVBcast: {"vbcast", ClassVector},
	OpVRed:   {"vred", ClassVector},
}

// mnemonics maps assembly mnemonics back to opcodes (built once, immutable
// afterwards; safe for concurrent reads).
var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opcodes))
	for op, info := range opcodes {
		m[info.name] = op
	}
	return m
}()

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	_, ok := opcodes[op]
	return ok
}

// String returns the assembly mnemonic for op.
func (op Opcode) String() string {
	if info, ok := opcodes[op]; ok {
		return info.name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// ClassOf returns the resource class of op, or 0 for invalid opcodes.
func (op Opcode) ClassOf() Class {
	return opcodes[op].class
}

// FromMnemonic returns the opcode for an assembly mnemonic.
func FromMnemonic(name string) (Opcode, bool) {
	op, ok := mnemonics[name]
	return op, ok
}

// IsControl reports whether op redirects or ends control flow (and so may
// only appear as a block terminator).
func (op Opcode) IsControl() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpHalt:
		return true
	default:
		return false
	}
}

// IsCondBranch reports whether op is a conditional branch.
func (op Opcode) IsCondBranch() bool {
	switch op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	default:
		return false
	}
}

// HasImm reports whether op uses its immediate operand.
func (op Opcode) HasImm() bool {
	switch op {
	case OpMovI, OpAddI, OpLoad, OpFLoad, OpStore, OpFStore:
		return true
	default:
		return false
	}
}

// RegFile identifies which register file an operand index refers to.
type RegFile uint8

// Register files.
const (
	RegNone RegFile = iota
	RegInt
	RegFP
	RegVec
)

// Operands describes the register files of an opcode's dst, a and b
// operands (RegNone when unused).
func (op Opcode) Operands() (dst, a, b RegFile) {
	switch op {
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpRor,
		OpCmpLT, OpCmpEQ, OpMul, OpMulH:
		return RegInt, RegInt, RegInt
	case OpMov:
		return RegInt, RegInt, RegNone
	case OpMovI:
		return RegInt, RegNone, RegNone
	case OpAddI:
		return RegInt, RegInt, RegNone
	case OpFAdd, OpFSub, OpFMul, OpFDiv:
		return RegFP, RegFP, RegFP
	case OpFSqrt, OpFMov:
		return RegFP, RegFP, RegNone
	case OpFCvt:
		return RegFP, RegInt, RegNone
	case OpFToI:
		return RegInt, RegFP, RegNone
	case OpLoad:
		return RegInt, RegInt, RegNone
	case OpFLoad:
		return RegFP, RegInt, RegNone
	case OpStore:
		return RegNone, RegInt, RegInt
	case OpFStore:
		return RegNone, RegInt, RegFP
	case OpBeq, OpBne, OpBlt, OpBge:
		return RegNone, RegInt, RegInt
	case OpJmp, OpHalt:
		return RegNone, RegNone, RegNone
	case OpVAdd, OpVXor, OpVMul:
		return RegVec, RegVec, RegVec
	case OpVBcast:
		return RegVec, RegInt, RegNone
	case OpVRed:
		return RegInt, RegVec, RegNone
	default:
		return RegNone, RegNone, RegNone
	}
}

// RegCount returns the number of registers in file f.
func (f RegFile) RegCount() int {
	switch f {
	case RegInt:
		return NumIntRegs
	case RegFP:
		return NumFPRegs
	case RegVec:
		return NumVecRegs
	default:
		return 0
	}
}

// Prefix returns the assembly register prefix for file f ("r", "f", "v").
func (f RegFile) Prefix() string {
	switch f {
	case RegInt:
		return "r"
	case RegFP:
		return "f"
	case RegVec:
		return "v"
	default:
		return "?"
	}
}
