package isa

import "testing"

func TestEveryOpcodeHasClassAndName(t *testing.T) {
	for op, info := range opcodes {
		if info.name == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if info.class < ClassIntALU || info.class >= numClasses {
			t.Errorf("opcode %s has invalid class %d", info.name, info.class)
		}
	}
}

func TestMnemonicRoundTrip(t *testing.T) {
	for op, info := range opcodes {
		got, ok := FromMnemonic(info.name)
		if !ok {
			t.Errorf("FromMnemonic(%q) not found", info.name)
			continue
		}
		if got != op {
			t.Errorf("FromMnemonic(%q) = %d, want %d", info.name, got, op)
		}
	}
	if _, ok := FromMnemonic("bogus"); ok {
		t.Error("FromMnemonic accepted an unknown mnemonic")
	}
}

func TestInvalidOpcode(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid reported valid")
	}
	if Opcode(200).Valid() {
		t.Error("undefined opcode 200 reported valid")
	}
	if got := Opcode(200).String(); got != "op(200)" {
		t.Errorf("String of invalid opcode = %q", got)
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("String of invalid class = %q", got)
	}
}

func TestControlClassification(t *testing.T) {
	controls := []Opcode{OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpHalt}
	for _, op := range controls {
		if !op.IsControl() {
			t.Errorf("%s should be control", op)
		}
		if op.ClassOf() != ClassBranch {
			t.Errorf("%s class = %s, want branch", op, op.ClassOf())
		}
	}
	condBranches := []Opcode{OpBeq, OpBne, OpBlt, OpBge}
	for _, op := range condBranches {
		if !op.IsCondBranch() {
			t.Errorf("%s should be a conditional branch", op)
		}
	}
	if OpJmp.IsCondBranch() || OpHalt.IsCondBranch() {
		t.Error("jmp/halt misclassified as conditional branches")
	}
	if OpAdd.IsControl() {
		t.Error("add misclassified as control")
	}
}

func TestOperandsConsistentWithClass(t *testing.T) {
	for op, info := range opcodes {
		dst, a, b := op.Operands()
		// Every non-control, non-store opcode must write a register so
		// that full execution is observable in snapshots (the paper's
		// "every instruction modifies the registers" requirement).
		writes := dst != RegNone
		isStore := op == OpStore || op == OpFStore
		if !op.IsControl() && !isStore && !writes {
			t.Errorf("%s writes no register", info.name)
		}
		// Register-file sanity: operands only come from defined files.
		for _, f := range []RegFile{dst, a, b} {
			switch f {
			case RegNone, RegInt, RegFP, RegVec:
			default:
				t.Errorf("%s has undefined operand file %d", info.name, f)
			}
		}
	}
}

func TestHasImmMatchesDocumentedSet(t *testing.T) {
	want := map[Opcode]bool{
		OpMovI: true, OpAddI: true, OpLoad: true, OpFLoad: true,
		OpStore: true, OpFStore: true,
	}
	for op := range opcodes {
		if got := op.HasImm(); got != want[op] {
			t.Errorf("%s HasImm = %v, want %v", op, got, want[op])
		}
	}
}

func TestRegFileProperties(t *testing.T) {
	tests := []struct {
		f      RegFile
		count  int
		prefix string
	}{
		{RegInt, 16, "r"},
		{RegFP, 16, "f"},
		{RegVec, 8, "v"},
		{RegNone, 0, "?"},
	}
	for _, tt := range tests {
		if got := tt.f.RegCount(); got != tt.count {
			t.Errorf("RegCount(%d) = %d, want %d", tt.f, got, tt.count)
		}
		if got := tt.f.Prefix(); got != tt.prefix {
			t.Errorf("Prefix(%d) = %q, want %q", tt.f, got, tt.prefix)
		}
	}
}

func TestClassesListComplete(t *testing.T) {
	seen := map[Class]bool{}
	for _, c := range Classes {
		seen[c] = true
	}
	for _, info := range opcodes {
		if !seen[info.class] {
			t.Errorf("class %s of some opcode missing from Classes", info.class)
		}
	}
	if len(Classes) != int(numClasses)-1 {
		t.Errorf("Classes has %d entries, want %d", len(Classes), int(numClasses)-1)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassIntALU: "intalu", ClassIntMul: "intmul", ClassFPALU: "fpalu",
		ClassLoad: "load", ClassStore: "store", ClassBranch: "branch",
		ClassVector: "vector",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, s)
		}
	}
}

func TestFusedOpcodeMetadata(t *testing.T) {
	seen := map[Opcode]bool{}
	for op := Opcode(0); op < 255; op++ {
		first, second, ok := op.FuseParts()
		if !ok {
			if op.IsFused() {
				t.Errorf("%d: IsFused true but FuseParts failed", op)
			}
			continue
		}
		seen[op] = true
		if !op.IsFused() {
			t.Errorf("%s: FuseParts ok but IsFused false", op)
		}
		if op.Valid() {
			t.Errorf("%s: fused opcode must not be Valid (wire format)", op)
		}
		if !first.Valid() || !second.Valid() {
			t.Errorf("%s: halves %s/%s not architectural opcodes", op, first, second)
		}
		if first.IsControl() {
			t.Errorf("%s: first half %s is a control instruction", op, first)
		}
		// Fuse must invert FuseParts exactly.
		if got, ok := Fuse(first, second); !ok || got != op {
			t.Errorf("Fuse(%s, %s) = %s, %v; want %s", first, second, got, ok, op)
		}
		// Mnemonic is "first.second" for debugging output.
		if want := first.String() + "." + second.String(); op.String() != want {
			t.Errorf("%s.String() = %q, want %q", op, op.String(), want)
		}
		// Fused opcodes have no single class; accounting uses block tallies.
		if op.ClassOf() != 0 {
			t.Errorf("%s: ClassOf = %v, want 0", op, op.ClassOf())
		}
	}
	if len(seen) == 0 {
		t.Fatal("no fused opcodes defined")
	}
	// Architectural opcodes never collide with the fused space.
	for op := range opcodes {
		if op >= FuseBase {
			t.Errorf("architectural opcode %s (%d) overlaps the fused space (FuseBase %d)", op, op, FuseBase)
		}
	}
}

func TestFuseRejectsNonPairs(t *testing.T) {
	if op, ok := Fuse(OpHalt, OpAdd); ok {
		t.Errorf("Fuse(halt, add) = %s, want no fusion", op)
	}
	if op, ok := Fuse(OpAdd, OpHalt); ok {
		t.Errorf("Fuse(add, halt) = %s, want no fusion", op)
	}
	if op, ok := Fuse(OpFuseAddAdd, OpAdd); ok {
		t.Errorf("Fuse of an already-fused opcode = %s, want no fusion", op)
	}
}

func TestOperandLimitsMatchOperands(t *testing.T) {
	lim := func(f RegFile) uint8 {
		if f == RegNone {
			return 1
		}
		return uint8(f.RegCount())
	}
	for op := range opcodes {
		dst, a, b := op.Operands()
		ld, la, lb := op.OperandLimits()
		if ld != lim(dst) || la != lim(a) || lb != lim(b) {
			t.Errorf("%s: OperandLimits = (%d,%d,%d), want (%d,%d,%d)",
				op, ld, la, lb, lim(dst), lim(a), lim(b))
		}
	}
	if d, a, b := Opcode(250).OperandLimits(); d != 0 || a != 0 || b != 0 {
		t.Errorf("invalid opcode OperandLimits = (%d,%d,%d), want zeros", d, a, b)
	}
}

func TestClassTableMatchesMap(t *testing.T) {
	for op, info := range opcodes {
		if op.ClassOf() != info.class {
			t.Errorf("%s: ClassOf = %v, want %v", op, op.ClassOf(), info.class)
		}
	}
}

// TestOpMetaMatches pins the packed OpMeta word to the canonical
// per-opcode predicates for every possible opcode byte, including
// undefined and fused ones (which must read as invalid with all-zero
// operand bounds).
func TestOpMetaMatches(t *testing.T) {
	for i := 0; i < 256; i++ {
		op := Opcode(i)
		m := MetaOf(op)
		if got, want := m&MetaValid != 0, op.Valid(); got != want {
			t.Errorf("op %d: meta valid = %v, want %v", i, got, want)
		}
		if got, want := m&MetaControl != 0, op.Valid() && op.IsControl(); got != want {
			t.Errorf("op %d: meta control = %v, want %v", i, got, want)
		}
		wd, wa, wb := op.OperandLimits()
		if m.LimDst() != wd || m.LimA() != wa || m.LimB() != wb {
			t.Errorf("op %d: meta limits = (%d,%d,%d), want (%d,%d,%d)",
				i, m.LimDst(), m.LimA(), m.LimB(), wd, wa, wb)
		}
		var wantClass Class
		if op.Valid() {
			wantClass = op.ClassOf()
		}
		if m.Class() != wantClass {
			t.Errorf("op %d: meta class = %v, want %v", i, m.Class(), wantClass)
		}
	}
}
