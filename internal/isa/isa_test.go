package isa

import "testing"

func TestEveryOpcodeHasClassAndName(t *testing.T) {
	for op, info := range opcodes {
		if info.name == "" {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if info.class < ClassIntALU || info.class >= numClasses {
			t.Errorf("opcode %s has invalid class %d", info.name, info.class)
		}
	}
}

func TestMnemonicRoundTrip(t *testing.T) {
	for op, info := range opcodes {
		got, ok := FromMnemonic(info.name)
		if !ok {
			t.Errorf("FromMnemonic(%q) not found", info.name)
			continue
		}
		if got != op {
			t.Errorf("FromMnemonic(%q) = %d, want %d", info.name, got, op)
		}
	}
	if _, ok := FromMnemonic("bogus"); ok {
		t.Error("FromMnemonic accepted an unknown mnemonic")
	}
}

func TestInvalidOpcode(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid reported valid")
	}
	if Opcode(200).Valid() {
		t.Error("undefined opcode 200 reported valid")
	}
	if got := Opcode(200).String(); got != "op(200)" {
		t.Errorf("String of invalid opcode = %q", got)
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("String of invalid class = %q", got)
	}
}

func TestControlClassification(t *testing.T) {
	controls := []Opcode{OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpHalt}
	for _, op := range controls {
		if !op.IsControl() {
			t.Errorf("%s should be control", op)
		}
		if op.ClassOf() != ClassBranch {
			t.Errorf("%s class = %s, want branch", op, op.ClassOf())
		}
	}
	condBranches := []Opcode{OpBeq, OpBne, OpBlt, OpBge}
	for _, op := range condBranches {
		if !op.IsCondBranch() {
			t.Errorf("%s should be a conditional branch", op)
		}
	}
	if OpJmp.IsCondBranch() || OpHalt.IsCondBranch() {
		t.Error("jmp/halt misclassified as conditional branches")
	}
	if OpAdd.IsControl() {
		t.Error("add misclassified as control")
	}
}

func TestOperandsConsistentWithClass(t *testing.T) {
	for op, info := range opcodes {
		dst, a, b := op.Operands()
		// Every non-control, non-store opcode must write a register so
		// that full execution is observable in snapshots (the paper's
		// "every instruction modifies the registers" requirement).
		writes := dst != RegNone
		isStore := op == OpStore || op == OpFStore
		if !op.IsControl() && !isStore && !writes {
			t.Errorf("%s writes no register", info.name)
		}
		// Register-file sanity: operands only come from defined files.
		for _, f := range []RegFile{dst, a, b} {
			switch f {
			case RegNone, RegInt, RegFP, RegVec:
			default:
				t.Errorf("%s has undefined operand file %d", info.name, f)
			}
		}
	}
}

func TestHasImmMatchesDocumentedSet(t *testing.T) {
	want := map[Opcode]bool{
		OpMovI: true, OpAddI: true, OpLoad: true, OpFLoad: true,
		OpStore: true, OpFStore: true,
	}
	for op := range opcodes {
		if got := op.HasImm(); got != want[op] {
			t.Errorf("%s HasImm = %v, want %v", op, got, want[op])
		}
	}
}

func TestRegFileProperties(t *testing.T) {
	tests := []struct {
		f      RegFile
		count  int
		prefix string
	}{
		{RegInt, 16, "r"},
		{RegFP, 16, "f"},
		{RegVec, 8, "v"},
		{RegNone, 0, "?"},
	}
	for _, tt := range tests {
		if got := tt.f.RegCount(); got != tt.count {
			t.Errorf("RegCount(%d) = %d, want %d", tt.f, got, tt.count)
		}
		if got := tt.f.Prefix(); got != tt.prefix {
			t.Errorf("Prefix(%d) = %q, want %q", tt.f, got, tt.prefix)
		}
	}
}

func TestClassesListComplete(t *testing.T) {
	seen := map[Class]bool{}
	for _, c := range Classes {
		seen[c] = true
	}
	for _, info := range opcodes {
		if !seen[info.class] {
			t.Errorf("class %s of some opcode missing from Classes", info.class)
		}
	}
	if len(Classes) != int(numClasses)-1 {
		t.Errorf("Classes has %d entries, want %d", len(Classes), int(numClasses)-1)
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassIntALU: "intalu", ClassIntMul: "intmul", ClassFPALU: "fpalu",
		ClassLoad: "load", ClassStore: "store", ClassBranch: "branch",
		ClassVector: "vector",
	}
	for c, s := range want {
		if got := c.String(); got != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, got, s)
		}
	}
}
