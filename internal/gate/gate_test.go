package gate

import (
	"crypto/sha256"
	"testing"
	"testing/quick"
)

func TestSHA256GateMatchesStdlib(t *testing.T) {
	g := SHA256{}
	in := []byte("hashcore gate test")
	if got, want := g.Sum(in), sha256.Sum256(in); got != want {
		t.Fatalf("SHA256 gate = %x, want %x", got, want)
	}
}

func TestPortableGateMatchesSHA256Gate(t *testing.T) {
	f := func(msg []byte) bool {
		return Portable{}.Sum(msg) == SHA256{}.Sum(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGateNames(t *testing.T) {
	tests := []struct {
		g    Gate
		want string
	}{
		{SHA256{}, "sha256"},
		{Portable{}, "sha256-portable"},
		{Truncated{Bits: 12}, "sha256-truncated-12"},
		{Truncated{}, "sha256-truncated-16"},
	}
	for _, tt := range tests {
		if got := tt.g.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestTruncatedIsDeterministic(t *testing.T) {
	g := Truncated{Bits: 8}
	a := g.Sum([]byte("x"))
	b := g.Sum([]byte("x"))
	if a != b {
		t.Fatal("Truncated gate is not deterministic")
	}
}

// TestTruncatedCollidesQuickly verifies the gate is actually weak: with 8
// bits of entropy there are at most 256 distinct outputs, so 257 distinct
// inputs must contain a collision (pigeonhole).
func TestTruncatedCollidesQuickly(t *testing.T) {
	g := Truncated{Bits: 8}
	seen := make(map[[SeedSize]byte][]byte)
	for i := 0; i < 257; i++ {
		msg := []byte{byte(i), byte(i >> 8), 0xaa}
		d := g.Sum(msg)
		if _, ok := seen[d]; ok {
			return // collision found, as expected
		}
		seen[d] = msg
	}
	t.Fatal("no collision among 257 inputs to an 8-bit gate")
}

// TestTruncatedOutputCount verifies the number of distinct outputs is
// bounded by 2^Bits.
func TestTruncatedOutputCount(t *testing.T) {
	g := Truncated{Bits: 4}
	outputs := make(map[[SeedSize]byte]bool)
	for i := 0; i < 4096; i++ {
		outputs[g.Sum([]byte{byte(i), byte(i >> 8)})] = true
	}
	if len(outputs) > 16 {
		t.Fatalf("4-bit truncated gate produced %d distinct outputs, want <= 16", len(outputs))
	}
}

func TestUitoa(t *testing.T) {
	tests := []struct {
		in   uint
		want string
	}{{0, "0"}, {7, "7"}, {42, "42"}, {65535, "65535"}}
	for _, tt := range tests {
		if got := uitoa(tt.in); got != tt.want {
			t.Errorf("uitoa(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}
