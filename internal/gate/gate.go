// Package gate defines the hash gate abstraction from the HashCore paper.
//
// A hash gate is a conventional collision-resistant hash function (CRHF)
// used at the entry and exit of the HashCore pipeline (Figure 1 of the
// paper): the first gate turns an arbitrary input into the 256-bit hash
// seed; the second gate compresses seed||widget-output into the final
// digest. Theorem 1 reduces HashCore's collision resistance to the gate's,
// so the gate is the only cryptographic primitive in the system.
package gate

import (
	"crypto/sha256"
	"encoding/binary"

	"hashcore/internal/sha2"
)

// SeedSize is the hash gate output size in bytes (256 bits), matching the
// paper's assumption that "each hash gate produces a 256-bit output".
const SeedSize = 32

// Gate is a hash gate: a function from arbitrary bit-strings to fixed-size
// digests. Implementations must be deterministic and stateless.
type Gate interface {
	// Sum returns the gate digest of msg.
	Sum(msg []byte) [SeedSize]byte
	// Name identifies the gate (used in CLI output and experiment logs).
	Name() string
}

// SHA256 is the production hash gate, backed by the standard library's
// assembly-optimized crypto/sha256. The zero value is ready to use.
type SHA256 struct{}

var _ Gate = SHA256{}

// Sum returns SHA-256(msg).
func (SHA256) Sum(msg []byte) [SeedSize]byte { return sha256.Sum256(msg) }

// Name returns "sha256".
func (SHA256) Name() string { return "sha256" }

// Portable is a hash gate backed by this repository's own SHA-256
// implementation (internal/sha2). It produces identical output to SHA256
// and exists so the full HashCore pipeline can run with zero dependencies
// on platform crypto. The zero value is ready to use.
type Portable struct{}

var _ Gate = Portable{}

// Sum returns SHA-256(msg) computed by internal/sha2.
func (Portable) Sum(msg []byte) [SeedSize]byte { return sha2.Digest(msg) }

// Name returns "sha256-portable".
func (Portable) Name() string { return "sha256-portable" }

// Truncated is a deliberately weakened gate for testing the Theorem 1
// reduction: it keeps only Bits bits of SHA-256 entropy (the rest of the
// digest is a deterministic expansion of those bits). Collisions can be
// found by brute force in about 2^(Bits/2) queries, which lets tests
// exercise the collision-extraction algorithm B from the paper's appendix.
//
// Truncated is NOT collision resistant by construction and must never be
// used outside tests; the hashcore package does not expose it.
type Truncated struct {
	// Bits is the number of effective entropy bits, 1..64.
	Bits uint
}

var _ Gate = Truncated{}

// Sum returns a digest with only t.Bits bits of entropy: the SHA-256 digest
// is truncated to t.Bits bits and then deterministically re-expanded to 32
// bytes so downstream code sees a full-size seed.
func (t Truncated) Sum(msg []byte) [SeedSize]byte {
	bits := t.Bits
	if bits == 0 || bits > 64 {
		bits = 16
	}
	full := sha256.Sum256(msg)
	kept := binary.BigEndian.Uint64(full[:8])
	if bits < 64 {
		kept &= (1 << bits) - 1
	}
	// Expand the kept bits back to 32 bytes through SHA-256 so the output
	// "looks like" a normal seed but depends only on the kept bits.
	var keptBytes [8]byte
	binary.BigEndian.PutUint64(keptBytes[:], kept)
	return sha256.Sum256(keptBytes[:])
}

// Name returns a name that records the truncation width.
func (t Truncated) Name() string {
	bits := t.Bits
	if bits == 0 || bits > 64 {
		bits = 16
	}
	return "sha256-truncated-" + uitoa(bits)
}

// uitoa formats a small unsigned integer without pulling in strconv for a
// single call site. (strconv is fine, but this keeps the gate package
// dependency-light for auditability.)
func uitoa(v uint) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
