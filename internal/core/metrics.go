package core

import (
	"time"

	"hashcore/internal/telemetry"
	"hashcore/internal/vm"
)

// hashMetrics is the hashing hot loop's instrument set, resolved once at
// Func construction. All fields are nil-safe, so a Func built without a
// registry carries a nil *hashMetrics and pays a single predictable
// branch per hash.
type hashMetrics struct {
	// hashSeconds is the end-to-end H(x) latency; genSeconds/execSeconds
	// split the widget pipeline along the PhaseTimings boundary
	// (generation vs VM load+run; the gate is the remainder).
	hashSeconds *telemetry.Histogram
	genSeconds  *telemetry.Histogram
	execSeconds *telemetry.Histogram
	// retired counts executed widget instructions (architectural).
	retired *telemetry.Counter
	// archInstrs/fusedInstrs accumulate the static stream lengths of
	// every loaded widget; fused/arch is the superinstruction fusion
	// ratio (1.0 = no fusion benefit).
	archInstrs  *telemetry.Counter
	fusedInstrs *telemetry.Counter
	// jitCompileSeconds is the per-widget native compilation latency
	// (observed only on runs that actually compiled).
	jitCompileSeconds *telemetry.Histogram
	// hashesNative/hashesInterp count hashes by the engine that executed
	// them, so a fleet dashboard shows at a glance which backend is live.
	hashesNative *telemetry.Counter
	hashesInterp *telemetry.Counter
}

// newHashMetrics resolves the instrument set against reg (nil reg = nil
// metrics = disabled).
func newHashMetrics(reg *telemetry.Registry) *hashMetrics {
	if reg == nil {
		return nil
	}
	return &hashMetrics{
		hashSeconds: reg.Histogram("hashcore_hash_seconds",
			"End-to-end HashCore hash latency.", telemetry.HashLatencyBuckets),
		genSeconds: reg.Histogram("hashcore_hash_phase_seconds",
			"Per-hash widget pipeline latency split by phase.",
			telemetry.HashLatencyBuckets, telemetry.Label{Key: "phase", Value: "gen"}),
		execSeconds: reg.Histogram("hashcore_hash_phase_seconds",
			"Per-hash widget pipeline latency split by phase.",
			telemetry.HashLatencyBuckets, telemetry.Label{Key: "phase", Value: "exec"}),
		retired: reg.Counter("hashcore_retired_instructions_total",
			"Widget instructions retired by the VM."),
		archInstrs: reg.Counter("hashcore_vm_instructions_total",
			"Static instruction-stream lengths of loaded widgets.",
			telemetry.Label{Key: "stream", Value: "arch"}),
		fusedInstrs: reg.Counter("hashcore_vm_instructions_total",
			"Static instruction-stream lengths of loaded widgets.",
			telemetry.Label{Key: "stream", Value: "fused"}),
		jitCompileSeconds: reg.Histogram("hashcore_jit_compile_seconds",
			"Per-widget native code compilation latency.",
			telemetry.QueueLatencyBuckets),
		hashesNative: reg.Counter("hashcore_hashes_total",
			"Hashes computed, by execution backend.",
			telemetry.Label{Key: "backend", Value: "native"}),
		hashesInterp: reg.Counter("hashcore_hashes_total",
			"Hashes computed, by execution backend.",
			telemetry.Label{Key: "backend", Value: "interp"}),
	}
}

// observeHash records one successful hash: total wall time plus the
// gen/exec split and retired-instruction delta accumulated in t since
// the (genNs, execNs, retired) baseline captured at the start of the
// call, attributed to the backend that executed it. Allocation-free.
func (hm *hashMetrics) observeHash(start time.Time, t *PhaseTimings, genNs, execNs int64, retired uint64, backend vm.Backend) {
	hm.hashSeconds.Observe(time.Since(start).Seconds())
	hm.genSeconds.Observe(float64(t.GenNs-genNs) / 1e9)
	hm.execSeconds.Observe(float64(t.ExecNs-execNs) / 1e9)
	hm.retired.Add(t.Retired - retired)
	if backend == vm.BackendNative {
		hm.hashesNative.Inc()
	} else {
		hm.hashesInterp.Inc()
	}
}
