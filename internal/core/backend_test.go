package core

import (
	"testing"

	"hashcore/internal/telemetry"
	"hashcore/internal/vm"
	"hashcore/internal/workload"
)

func newBackendFunc(t *testing.T, b vm.Backend, reg *telemetry.Registry, j *telemetry.Journal) *Func {
	t.Helper()
	w, err := workload.ByName("leela")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Options{Profile: w.Profile, Backend: b, Metrics: reg, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestBackendDigestsIdentical is the facade-level determinism check: the
// same input hashed under every backend setting yields the same digest.
func TestBackendDigestsIdentical(t *testing.T) {
	auto := newBackendFunc(t, vm.BackendAuto, nil, nil)
	interp := newBackendFunc(t, vm.BackendInterp, nil, nil)
	native := newBackendFunc(t, vm.BackendNative, nil, nil)
	for _, in := range []string{"", "a", "hashcore block header"} {
		da, err := auto.Hash([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		di, err := interp.Hash([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		dn, err := native.Hash([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		if da != di || da != dn {
			t.Fatalf("digests diverge across backends for %q", in)
		}
	}
}

// TestBackendMetrics checks the hashes_total backend attribution and the
// compile-latency histogram.
func TestBackendMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := newBackendFunc(t, vm.BackendInterp, reg, nil)
	const n = 2
	for i := 0; i < n; i++ {
		if _, err := f.Hash([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := reg.Value("hashcore_hashes_total"); got != n {
		t.Fatalf("hashcore_hashes_total = %v, want %d", got, n)
	}
	if got, _ := reg.Value("hashcore_jit_compile_seconds"); got != 0 {
		t.Fatalf("interpreter backend observed %v compiles, want 0", got)
	}

	if !vm.NativeSupported() {
		return
	}
	reg = telemetry.NewRegistry()
	f = newBackendFunc(t, vm.BackendAuto, reg, nil)
	for i := 0; i < n; i++ {
		if _, err := f.Hash([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := reg.Value("hashcore_hashes_total"); got != n {
		t.Fatalf("hashcore_hashes_total = %v, want %d", got, n)
	}
	// Every hash generates (and therefore compiles) a fresh widget.
	if got, _ := reg.Value("hashcore_jit_compile_seconds"); got != n {
		t.Fatalf("hashcore_jit_compile_seconds count = %v, want %d", got, n)
	}
}

// TestJournalNoFallbackOnHealthyPath: a working configuration must not
// emit jit_fallback (both on the native path and the explicitly forced
// interpreter, which is a choice, not a fallback).
func TestJournalNoFallbackOnHealthyPath(t *testing.T) {
	for _, b := range []vm.Backend{vm.BackendAuto, vm.BackendInterp} {
		j := telemetry.NewJournal(8)
		f := newBackendFunc(t, b, nil, j)
		if _, err := f.Hash([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if evs := j.Events(8); len(evs) != 0 {
			t.Fatalf("backend %v journaled %v on a healthy hash", b, evs)
		}
	}
}
