package core

import (
	"testing"

	"hashcore/internal/telemetry"
	"hashcore/internal/workload"
)

func newMetricFunc(t *testing.T, reg *telemetry.Registry) *Func {
	t.Helper()
	w, err := workload.ByName("leela")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Options{Profile: w.Profile, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// Telemetry must not change digests: the instrumented path wraps the
// same pipeline.
func TestMetricsDigestsUnchanged(t *testing.T) {
	reg := telemetry.NewRegistry()
	plain := newMetricFunc(t, nil)
	instr := newMetricFunc(t, reg)
	for _, in := range []string{"", "a", "hashcore block header"} {
		a, err := plain.Hash([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		b, err := instr.Hash([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("digest mismatch for %q with telemetry enabled", in)
		}
	}
}

// Every hash must land in the histograms and counters.
func TestMetricsRecorded(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := newMetricFunc(t, reg)
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := f.Hash([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := reg.Value("hashcore_hash_seconds"); got != n {
		t.Fatalf("hashcore_hash_seconds count = %v, want %d", got, n)
	}
	// The phase histogram carries both label sets; Value sums their
	// counts (one gen + one exec observation per hash).
	if got, _ := reg.Value("hashcore_hash_phase_seconds"); got != 2*n {
		t.Fatalf("hashcore_hash_phase_seconds count = %v, want %d", got, 2*n)
	}
	if got, _ := reg.Value("hashcore_retired_instructions_total"); got <= 0 {
		t.Fatalf("retired instructions = %v", got)
	}
	arch, _ := reg.Value("hashcore_vm_instructions_total")
	if arch <= 0 {
		t.Fatalf("vm instruction streams = %v", arch)
	}
}

// The acceptance criterion: hashing with telemetry enabled must stay
// zero-allocation in the steady state, same as without.
func TestSessionHashZeroAllocWithTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := newMetricFunc(t, reg)
	s := f.NewSession()
	input := []byte("alloc probe")
	// Warm up to high-water buffer capacity.
	for i := 0; i < 8; i++ {
		if _, err := s.Hash(input); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(16, func() {
		if _, err := s.Hash(input); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("instrumented Session.Hash allocates %v/op, want 0", n)
	}
}
