package core

import (
	"fmt"

	"hashcore/internal/asm"
	"hashcore/internal/perfprox"
	"hashcore/internal/vm"
)

// Session is a reusable execution context for one HashCore function: it
// owns the generator scratch (PRNGs, budgets, program builder), the VM
// (decoded code and scratch memory image), the execution result (snapshot
// output buffer) and the gate concatenation buffer. After a few warm-up
// hashes every buffer has reached its high-water capacity and further
// Hash calls allocate nothing.
//
// A Session is bound to the Func that created it and is NOT safe for
// concurrent use; Func.Hash maintains a sync.Pool of sessions so ordinary
// callers never touch this type. Hold a Session directly when a single
// goroutine hashes in a tight loop (miner workers do this) and the pool
// round-trip is unwanted.
//
// Digests computed through a Session are bit-identical to the
// allocate-per-call pipeline; the golden-vector tests lock this in.
type Session struct {
	f   *Func
	gen perfprox.Scratch
	m   vm.Machine
	res vm.Result
	buf []byte // seed || widget-output gate message
}

// NewSession returns a fresh execution context for f.
func (f *Func) NewSession() *Session {
	return &Session{f: f}
}

// Hash computes the HashCore digest of input using the session's reusable
// state. It is equivalent to (but does not allocate like) Func.Hash.
func (s *Session) Hash(input []byte) (Digest, error) {
	return s.hash(input, nil)
}

// hash runs the full pipeline: s = G(x), then widgets chained through the
// gate. obs may be nil (the VM then takes its specialized unobserved
// loop).
func (s *Session) hash(input []byte, obs vm.Observer) (Digest, error) {
	f := s.f
	seed := f.gate.Sum(input)
	for i := 0; i < f.widgets; i++ {
		if err := s.runWidget(perfprox.Seed(seed), obs); err != nil {
			return Digest{}, err
		}
		s.buf = append(append(s.buf[:0], seed[:]...), s.res.Output...)
		seed = f.gate.Sum(s.buf)
	}
	return seed, nil
}

// runWidget executes W(s) into s.res: generate (optionally round-tripping
// through source), load into the session VM, run.
func (s *Session) runWidget(seed perfprox.Seed, obs vm.Observer) error {
	f := s.f
	if f.useSrc {
		// The paper-faithful textual pipeline allocates by design (it
		// renders and re-parses source); sessions only reuse the VM here.
		src, err := f.gen.GenerateSource(seed)
		if err != nil {
			return err
		}
		widget, err := asm.Assemble(src)
		if err != nil {
			return fmt.Errorf("core: compiling generated source: %w", err)
		}
		if err := s.m.Load(widget); err != nil {
			return err
		}
	} else {
		widget, err := f.gen.GenerateInto(seed, &s.gen)
		if err != nil {
			return err
		}
		// The builder validated the program during BuildInto; skip the
		// VM's second structural pass.
		s.m.LoadTrusted(widget)
	}
	s.m.RunInto(f.vparams, obs, &s.res)
	return nil
}
