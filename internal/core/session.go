package core

import (
	"fmt"
	"time"

	"hashcore/internal/asm"
	"hashcore/internal/perfprox"
	"hashcore/internal/vm"
)

// Session is a reusable execution context for one HashCore function: it
// owns the generator scratch (PRNGs, budgets, program builder), the VM
// (decoded code and scratch memory image), the execution result (snapshot
// output buffer) and the gate concatenation buffer. After a few warm-up
// hashes every buffer has reached its high-water capacity and further
// Hash calls allocate nothing.
//
// A Session is bound to the Func that created it and is NOT safe for
// concurrent use; Func.Hash maintains a sync.Pool of sessions so ordinary
// callers never touch this type. Hold a Session directly when a single
// goroutine hashes in a tight loop (miner workers do this) and the pool
// round-trip is unwanted.
//
// Digests computed through a Session are bit-identical to the
// allocate-per-call pipeline; the golden-vector tests lock this in.
type Session struct {
	f   *Func
	gen perfprox.Scratch
	m   vm.Machine
	res vm.Result
	buf []byte // seed || widget-output gate message
}

// NewSession returns a fresh execution context for f.
func (f *Func) NewSession() *Session {
	s := &Session{f: f}
	s.m.SetBackend(f.backend)
	return s
}

// Hash computes the HashCore digest of input using the session's reusable
// state. It is equivalent to (but does not allocate like) Func.Hash.
func (s *Session) Hash(input []byte) (Digest, error) {
	return s.hash(input, nil, nil)
}

// PhaseTimings accumulates the wall-clock split of the widget pipeline
// across HashTimed calls: generation (hash seed -> validated program),
// execution (VM load + run) and the retired widget instructions. The gate
// applications are the (small) remainder against total hash time. Used by
// the benchmark harness to attribute performance movement to the right
// half of the pipeline.
type PhaseTimings struct {
	// GenNs is nanoseconds spent generating widget programs (for the
	// source pipeline: rendering and re-assembling them too).
	GenNs int64
	// ExecNs is nanoseconds spent loading programs into the VM and
	// executing them.
	ExecNs int64
	// CompileNs is nanoseconds spent compiling widgets to native code
	// (a subset of ExecNs; zero when the interpreter backend runs).
	CompileNs int64
	// Retired is the total number of retired widget instructions.
	Retired uint64
	// Hashes is the number of HashTimed calls accumulated.
	Hashes uint64
}

// HashTimed is Hash with per-phase instrumentation: the generation and
// execution wall time and retired-instruction count of every widget are
// accumulated into t. Digests are identical to Hash.
func (s *Session) HashTimed(input []byte, t *PhaseTimings) (Digest, error) {
	t.Hashes++
	return s.hash(input, nil, t)
}

// hash runs the full pipeline: s = G(x), then widgets chained through the
// gate. obs may be nil (the VM then takes its specialized unobserved
// loop); t may be nil (no timing instrumentation — unless the Func has
// telemetry enabled, in which case a stack-local PhaseTimings keeps the
// per-phase clocks running so the histograms can observe the split).
func (s *Session) hash(input []byte, obs vm.Observer, t *PhaseTimings) (Digest, error) {
	if met := s.f.met; met != nil {
		var local PhaseTimings
		if t == nil {
			t = &local
		}
		start := time.Now()
		genNs, execNs, retired := t.GenNs, t.ExecNs, t.Retired
		d, err := s.hashInner(input, obs, t)
		if err == nil {
			met.observeHash(start, t, genNs, execNs, retired, s.m.LastRunStats().Backend)
		}
		return d, err
	}
	return s.hashInner(input, obs, t)
}

func (s *Session) hashInner(input []byte, obs vm.Observer, t *PhaseTimings) (Digest, error) {
	f := s.f
	seed := f.gate.Sum(input)
	for i := 0; i < f.widgets; i++ {
		if err := s.runWidget(perfprox.Seed(seed), obs, t); err != nil {
			return Digest{}, err
		}
		s.buf = append(append(s.buf[:0], seed[:]...), s.res.Output...)
		seed = f.gate.Sum(s.buf)
	}
	return seed, nil
}

// runWidget executes W(s) into s.res: generate (optionally round-tripping
// through source), load into the session VM, run.
func (s *Session) runWidget(seed perfprox.Seed, obs vm.Observer, t *PhaseTimings) error {
	f := s.f
	var mark time.Time
	if t != nil {
		mark = time.Now()
	}
	if f.useSrc {
		// The paper-faithful textual pipeline allocates by design (it
		// renders and re-parses source); sessions only reuse the VM here.
		src, err := f.gen.GenerateSource(seed)
		if err != nil {
			return err
		}
		widget, err := asm.Assemble(src)
		if err != nil {
			return fmt.Errorf("core: compiling generated source: %w", err)
		}
		if t != nil {
			now := time.Now()
			t.GenNs += now.Sub(mark).Nanoseconds()
			mark = now
		}
		if err := s.m.Load(widget); err != nil {
			return err
		}
	} else {
		widget, err := f.gen.GenerateInto(seed, &s.gen)
		if err != nil {
			return err
		}
		if t != nil {
			now := time.Now()
			t.GenNs += now.Sub(mark).Nanoseconds()
			mark = now
		}
		// The builder validated the program during BuildInto; skip the
		// VM's second structural pass.
		s.m.LoadTrusted(widget)
	}
	if met := f.met; met != nil {
		arch, fused := s.m.CodeSize()
		met.archInstrs.Add(uint64(arch))
		met.fusedInstrs.Add(uint64(fused))
	}
	s.m.RunInto(f.vparams, obs, &s.res)
	if t != nil || f.met != nil || f.journal != nil {
		st := s.m.LastRunStats()
		if t != nil {
			t.ExecNs += time.Since(mark).Nanoseconds()
			t.CompileNs += st.CompileNs
			t.Retired += s.res.Retired
		}
		if met := f.met; met != nil && st.Compiled {
			met.jitCompileSeconds.Observe(float64(st.CompileNs) / 1e9)
		}
		if st.FallbackErr != nil {
			f.noteFallback(st.FallbackErr)
		}
	}
	return nil
}
