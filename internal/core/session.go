package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"hashcore/internal/asm"
	"hashcore/internal/perfprox"
	"hashcore/internal/vm"
)

// Session is a reusable execution context for one HashCore function: it
// owns the generator scratch (PRNGs, budgets, program builder), the VM
// (decoded code and scratch memory image), the execution result (snapshot
// output buffer) and the gate concatenation buffer. After a few warm-up
// hashes every buffer has reached its high-water capacity and further
// Hash calls allocate nothing.
//
// A Session is bound to the Func that created it and is NOT safe for
// concurrent use; Func.Hash maintains a sync.Pool of sessions so ordinary
// callers never touch this type. Hold a Session directly when a single
// goroutine hashes in a tight loop (miner workers do this) and the pool
// round-trip is unwanted.
//
// Each session owns one helper goroutine that restores the VM's
// scratch-memory image concurrently with widget generation and
// compilation (the memory declaration is derivable from the hash seed
// alone — see perfprox.Generator.MemoryPlan — so the fill needs nothing
// from the not-yet-generated program). Close releases the helper;
// sessions that are dropped without Close (a sync.Pool eviction, a
// forgotten miner worker) release it through a finalizer, so the helper
// can never leak past its session's lifetime — but explicit Close is
// preferred wherever a session's end is knowable (daemons do this on
// shutdown). A closed session must not be used again.
//
// Digests computed through a Session are bit-identical to the
// allocate-per-call pipeline — the overlapped fill produces the same
// pristine image reset would build, and a mismatched preparation is
// discarded, never adopted — and the golden-vector tests lock this in.
type Session struct {
	f   *Func
	gen perfprox.Scratch
	m   *vm.Machine
	res vm.Result
	buf []byte // seed || widget-output gate message

	// The fill helper: runWidget sends the next widget's memory
	// declaration, the helper answers on fillDone when the image is
	// pristine. Both channels are buffered so neither side blocks on a
	// missing rendezvous partner; nil when the helper is disabled (the
	// single-threaded reference pipeline the equivalence tests run).
	fillReq   chan fillRequest
	fillDone  chan struct{}
	closeOnce sync.Once

	// execMark is the instant the timed execution phase began (set by
	// loadWidget when instrumentation is on; runWidget closes the
	// interval after the run).
	execMark time.Time
}

// fillRequest names a pristine scratch-memory image to prepare.
type fillRequest struct {
	size int
	seed uint64
}

// NewSession returns a fresh execution context for f.
func (f *Func) NewSession() *Session {
	s := &Session{
		f:        f,
		m:        &vm.Machine{},
		fillReq:  make(chan fillRequest, 1),
		fillDone: make(chan struct{}, 1),
	}
	s.m.SetBackend(f.backend)
	// The helper captures the machine and channels, NOT the session:
	// a session unreferenced by everything but its own helper must become
	// garbage so the finalizer can release that helper.
	m, req, done := s.m, s.fillReq, s.fillDone
	go func() {
		for r := range req {
			m.PrepareMemory(r.size, r.seed)
			done <- struct{}{}
		}
	}()
	runtime.SetFinalizer(s, (*Session).Close)
	return s
}

// Close releases the session's fill helper goroutine. It is idempotent
// and safe to call on a session in any quiescent state (never concurrently
// with a Hash in flight). Pooled sessions need no explicit Close — the
// pool's owner Func never closes them, and a finalizer covers sessions the
// pool drops — but long-lived direct holders (miner workers, daemons)
// should Close when done. A closed session must not be used again.
func (s *Session) Close() {
	s.closeOnce.Do(func() {
		runtime.SetFinalizer(s, nil)
		if s.fillReq != nil {
			close(s.fillReq)
		}
	})
}

// disableFill turns the session into the single-threaded reference
// pipeline: the fill helper is released and every subsequent reset
// restores scratch memory inline, exactly as the pre-overlap pipeline
// did. Test hook (the overlapped-vs-reference equivalence tests run one
// of each); not part of the public surface.
func (s *Session) disableFill() {
	s.Close()
	s.fillReq, s.fillDone = nil, nil
}

// Hash computes the HashCore digest of input using the session's reusable
// state. It is equivalent to (but does not allocate like) Func.Hash.
func (s *Session) Hash(input []byte) (Digest, error) {
	return s.hash(input, nil, nil)
}

// PhaseTimings accumulates the wall-clock split of the widget pipeline
// across HashTimed calls: generation (hash seed -> validated program),
// execution (VM load + run) and the retired widget instructions. The gate
// applications are the (small) remainder against total hash time. Used by
// the benchmark harness to attribute performance movement to the right
// half of the pipeline.
type PhaseTimings struct {
	// GenNs is nanoseconds spent generating widget programs (for the
	// source pipeline: rendering and re-assembling them too).
	GenNs int64
	// ExecNs is nanoseconds spent loading programs into the VM and
	// executing them.
	ExecNs int64
	// CompileNs is nanoseconds spent compiling widgets to native code
	// (a subset of ExecNs; zero when the interpreter backend runs).
	CompileNs int64
	// FillNs is nanoseconds the pipeline spent blocked waiting for the
	// concurrent scratch-memory preparation (a subset of ExecNs). Near
	// zero when the fill helper finishes under the generation+compile
	// shadow; approaching the full fill cost when it does not (e.g. a
	// single-CPU host, where the helper's work serializes anyway).
	FillNs int64
	// LoadNs is nanoseconds spent loading generated programs into the VM
	// (a subset of ExecNs): adopting the builder arena's pre-decoded
	// stream plus rebuilding the per-block metadata.
	LoadNs int64
	// Retired is the total number of retired widget instructions.
	Retired uint64
	// Hashes is the number of HashTimed calls accumulated.
	Hashes uint64
}

// HashTimed is Hash with per-phase instrumentation: the generation and
// execution wall time and retired-instruction count of every widget are
// accumulated into t. Digests are identical to Hash.
func (s *Session) HashTimed(input []byte, t *PhaseTimings) (Digest, error) {
	t.Hashes++
	return s.hash(input, nil, t)
}

// hash runs the full pipeline: s = G(x), then widgets chained through the
// gate. obs may be nil (the VM then takes its specialized unobserved
// loop); t may be nil (no timing instrumentation — unless the Func has
// telemetry enabled, in which case a stack-local PhaseTimings keeps the
// per-phase clocks running so the histograms can observe the split).
func (s *Session) hash(input []byte, obs vm.Observer, t *PhaseTimings) (Digest, error) {
	if met := s.f.met; met != nil {
		var local PhaseTimings
		if t == nil {
			t = &local
		}
		start := time.Now()
		genNs, execNs, retired := t.GenNs, t.ExecNs, t.Retired
		d, err := s.hashInner(input, obs, t)
		if err == nil {
			met.observeHash(start, t, genNs, execNs, retired, s.m.LastRunStats().Backend)
		}
		return d, err
	}
	return s.hashInner(input, obs, t)
}

func (s *Session) hashInner(input []byte, obs vm.Observer, t *PhaseTimings) (Digest, error) {
	f := s.f
	seed := f.gate.Sum(input)
	for i := 0; i < f.widgets; i++ {
		if err := s.runWidget(perfprox.Seed(seed), obs, t); err != nil {
			return Digest{}, err
		}
		s.buf = append(append(s.buf[:0], seed[:]...), s.res.Output...)
		seed = f.gate.Sum(s.buf)
	}
	return seed, nil
}

// runWidget executes W(s) into s.res as an overlapped pipeline: the fill
// helper restores the VM's scratch-memory image (known from the seed
// alone) while this goroutine generates the widget (optionally
// round-tripping through source), loads it into the session VM and
// compiles it; the two halves join right before the run, which then finds
// memory already pristine. The phases touch disjoint machine state (image
// vs. code), and a preparation that does not exactly match the loaded
// program's declaration is discarded by the VM, so digests cannot depend
// on the overlap.
func (s *Session) runWidget(seed perfprox.Seed, obs vm.Observer, t *PhaseTimings) error {
	f := s.f
	overlap := s.fillReq != nil
	if overlap {
		size, memSeed := f.gen.MemoryPlan(seed)
		s.fillReq <- fillRequest{size: size, seed: memSeed}
	}
	err := s.loadWidget(seed, obs, t)
	if overlap {
		// Always collect the helper's answer — an error path that left
		// the rendezvous pending would desynchronize every later widget.
		var fillStart time.Time
		if t != nil {
			fillStart = time.Now()
		}
		<-s.fillDone
		if t != nil {
			t.FillNs += time.Since(fillStart).Nanoseconds()
		}
	}
	if err != nil {
		return err
	}
	if met := f.met; met != nil {
		arch, fused := s.m.CodeSize()
		met.archInstrs.Add(uint64(arch))
		met.fusedInstrs.Add(uint64(fused))
	}
	s.m.RunInto(f.vparams, obs, &s.res)
	if t != nil || f.met != nil || f.journal != nil {
		st := s.m.LastRunStats()
		if t != nil {
			t.ExecNs += time.Since(s.execMark).Nanoseconds()
			t.CompileNs += st.CompileNs
			t.Retired += s.res.Retired
		}
		if met := f.met; met != nil && st.Compiled {
			met.jitCompileSeconds.Observe(float64(st.CompileNs) / 1e9)
		}
		if st.FallbackErr != nil {
			f.noteFallback(st.FallbackErr)
		}
	}
	return nil
}

// loadWidget runs the generate/load/compile half of the widget pipeline —
// everything that can proceed while the fill helper restores scratch
// memory. On return the session VM holds the widget for seed, compiled
// when a native backend will run it.
func (s *Session) loadWidget(seed perfprox.Seed, obs vm.Observer, t *PhaseTimings) error {
	f := s.f
	var mark time.Time
	if t != nil {
		mark = time.Now()
	}
	if f.useSrc {
		// The paper-faithful textual pipeline allocates by design (it
		// renders and re-parses source); sessions only reuse the VM here.
		src, err := f.gen.GenerateSource(seed)
		if err != nil {
			return err
		}
		widget, err := asm.Assemble(src)
		if err != nil {
			return fmt.Errorf("core: compiling generated source: %w", err)
		}
		if t != nil {
			now := time.Now()
			t.GenNs += now.Sub(mark).Nanoseconds()
			mark = now
		}
		s.execMark = mark
		if err := s.m.Load(widget); err != nil {
			return err
		}
	} else {
		widget, err := f.gen.GenerateInto(seed, &s.gen)
		if err != nil {
			return err
		}
		if t != nil {
			now := time.Now()
			t.GenNs += now.Sub(mark).Nanoseconds()
			mark = now
		}
		s.execMark = mark
		// The builder validated the program during BuildInto; skip the
		// VM's second structural pass.
		s.m.LoadTrusted(widget)
	}
	if t != nil {
		t.LoadNs += time.Since(s.execMark).Nanoseconds()
	}
	// Compile now rather than lazily inside the first run, so compilation
	// happens under the fill helper's shadow. The compile is cached
	// against the program load; the run's own stats then report zero
	// compile time, so the eager compile's cost (and its telemetry
	// observation) is accounted here instead. A compile failure is left
	// for the run to discover — it falls back to the interpreter and
	// reports the cached error as FallbackErr, same as the lazy path.
	if obs == nil && s.m.BackendSelected() == vm.BackendNative {
		_, _ = s.m.CompileNative()
		if st := s.m.LastRunStats(); st.Compiled {
			if t != nil {
				t.CompileNs += st.CompileNs
			}
			if met := f.met; met != nil {
				met.jitCompileSeconds.Observe(float64(st.CompileNs) / 1e9)
			}
		}
	}
	return nil
}
