// Package core assembles the HashCore PoW function from its parts
// (Figure 1 of the paper):
//
//	input ──G──> seed s ──(widget generation W)──> widget output
//	                │                                   │
//	                └────────────── s ║ W(s) ──────G──> digest
//
// Formally H(x) = G(s || W(s)) with s = G(x), where G is the hash gate and
// W is widget generation + execution. Theorem 1 of the paper proves H is
// collision-resistant when G is; ExtractGateCollision implements the
// constructive reduction (algorithm B) from that proof, and the tests run
// it against a deliberately weakened gate.
package core

import (
	"errors"
	"fmt"
	"sync"

	"hashcore/internal/asm"
	"hashcore/internal/gate"
	"hashcore/internal/perfprox"
	"hashcore/internal/profile"
	"hashcore/internal/prog"
	"hashcore/internal/telemetry"
	"hashcore/internal/vm"
)

// DigestSize is the HashCore output size in bytes.
const DigestSize = gate.SeedSize

// Digest is a HashCore output.
type Digest = [DigestSize]byte

// Options configures a HashCore function. Profile is required; everything
// else has sensible defaults.
type Options struct {
	// Gate is the hash gate G. Defaults to gate.SHA256.
	Gate gate.Gate
	// Profile is the inverted-benchmarking target profile (required).
	Profile *profile.Profile
	// GenParams tunes the widget generator.
	GenParams perfprox.Params
	// VMParams tunes widget execution (snapshot interval, budget).
	VMParams vm.Params
	// Widgets is the number of sequentially chained widgets (the paper
	// uses one but notes "multiple widgets could be generated ... and
	// executed sequentially"). Defaults to 1.
	Widgets int
	// UseSourcePipeline routes every widget through the textual assembly
	// stage (generate source, then compile), mirroring the paper's
	// script -> C -> binary chain. When false the generator's in-memory
	// program is executed directly; the two paths produce bit-identical
	// results (property-tested) so this is purely a fidelity/speed
	// trade-off.
	UseSourcePipeline bool
	// Backend selects the widget execution engine (vm.BackendAuto, the
	// zero value, picks native code where supported and falls back to the
	// fused interpreter). Digests are bit-identical across backends.
	Backend vm.Backend
	// Metrics, when non-nil, instruments every hash through this
	// registry: latency histograms (total and gen/exec split), retired
	// instructions, and static fusion-ratio counters. The record path
	// is allocation-free and costs a few clock reads and atomic adds
	// per hash, so enabling it does not perturb throughput measurably.
	Metrics *telemetry.Registry
	// Journal, when non-nil, receives structured events: currently
	// jit_fallback, emitted once per Func when a native-capable backend
	// falls back to the interpreter (compile failure).
	Journal *telemetry.Journal
}

// Func is an instantiated HashCore PoW function. Its configuration is
// immutable and it is safe for concurrent use: each Hash call checks a
// reusable execution context (Session) out of an internal pool, so
// steady-state hashing allocates nothing while the public API stays a
// plain function call.
type Func struct {
	gate    gate.Gate
	gen     *perfprox.Generator
	vparams vm.Params
	widgets int
	useSrc  bool
	backend vm.Backend
	met     *hashMetrics       // nil when telemetry is disabled
	journal *telemetry.Journal // nil-safe; jit_fallback events

	fellBack sync.Once // jit_fallback is journaled once per Func
	sessions sync.Pool // of *Session
}

// ErrNoProfile is returned by New when Options.Profile is missing.
var ErrNoProfile = errors.New("core: Options.Profile is required")

// New builds a HashCore function from opts.
func New(opts Options) (*Func, error) {
	if opts.Profile == nil {
		return nil, ErrNoProfile
	}
	g := opts.Gate
	if g == nil {
		g = gate.SHA256{}
	}
	gen, err := perfprox.NewGenerator(opts.Profile, opts.GenParams)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	widgets := opts.Widgets
	if widgets == 0 {
		widgets = 1
	}
	if widgets < 1 || widgets > 64 {
		return nil, fmt.Errorf("core: widget count %d out of range [1,64]", widgets)
	}
	f := &Func{
		gate:    g,
		gen:     gen,
		vparams: opts.VMParams,
		widgets: widgets,
		useSrc:  opts.UseSourcePipeline,
		backend: opts.Backend,
		met:     newHashMetrics(opts.Metrics),
		journal: opts.Journal,
	}
	f.sessions.New = func() any { return f.NewSession() }
	return f, nil
}

// Backend reports the configured execution backend.
func (f *Func) Backend() vm.Backend { return f.backend }

// noteFallback journals the first native-to-interpreter fallback of this
// Func's lifetime. Every session of a Func compiles the same instruction
// set, so one event carries all the signal without flooding the journal
// at hash rate.
func (f *Func) noteFallback(err error) {
	f.fellBack.Do(func() {
		f.journal.Emit("jit_fallback", map[string]any{
			"error":   err.Error(),
			"profile": f.gen.Profile().Name,
		})
	})
}

// GateName returns the name of the configured hash gate.
func (f *Func) GateName() string { return f.gate.Name() }

// ProfileName returns the name of the target profile.
func (f *Func) ProfileName() string { return f.gen.Profile().Name }

// Hash computes H(x) = G(s || W(s)) with s = G(x). With Widgets > 1 the
// construction is iterated: s_{i+1} = G(s_i || W(s_i)), and the final
// digest is the last gate output.
//
// Hash services the call from a pooled Session, so concurrent and
// repeated calls reach a zero-allocation steady state without the caller
// managing sessions explicitly.
func (f *Func) Hash(input []byte) (Digest, error) {
	s := f.session()
	d, err := s.hash(input, nil, nil)
	f.sessions.Put(s)
	return d, err
}

// HashObserved is Hash with a VM observer attached to every widget
// execution (used by the experiment harness to collect timing metrics
// from real PoW evaluations).
func (f *Func) HashObserved(input []byte, obs vm.Observer) (Digest, error) {
	s := f.session()
	d, err := s.hash(input, obs, nil)
	f.sessions.Put(s)
	return d, err
}

func (f *Func) session() *Session {
	return f.sessions.Get().(*Session)
}

// Sum is Hash for infallible contexts: it panics if the internal pipeline
// fails, which can only happen on resource exhaustion or a bug (the
// generator always emits valid programs — property-tested).
func (f *Func) Sum(input []byte) Digest {
	d, err := f.Hash(input)
	if err != nil {
		panic(fmt.Sprintf("core: internal pipeline failure: %v", err))
	}
	return d
}

// runWidget executes W(s) on a pooled session and returns a copy of the
// snapshot stream (the session's own output buffer is recycled). Cold
// paths (Trace, the collision reduction) use this; the hot path stays on
// Session.runWidget directly.
func (f *Func) runWidget(seed perfprox.Seed, obs vm.Observer) ([]byte, error) {
	s := f.session()
	defer f.sessions.Put(s)
	if err := s.runWidget(seed, obs, nil); err != nil {
		return nil, err
	}
	return append([]byte(nil), s.res.Output...), nil
}

// Trace exposes every intermediate of a hash computation for inspection
// (CLI, tests, experiment harness). Source/Widget/Result describe the
// first widget in the chain; Digest always equals Hash(Input).
type Trace struct {
	Input  []byte
	Seed   perfprox.Seed
	Fields perfprox.Fields
	Source string
	Widget *prog.Program
	Result *vm.Result
	Digest Digest
}

// Trace runs the full pipeline for input, retaining intermediates. It
// always uses the source pipeline so Trace.Source is the exact text that
// was compiled and executed.
func (f *Func) Trace(input []byte) (*Trace, error) {
	seedArr := f.gate.Sum(input)
	seed := perfprox.Seed(seedArr)
	src, err := f.gen.GenerateSource(seed)
	if err != nil {
		return nil, err
	}
	widget, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("core: compiling generated source: %w", err)
	}
	res, err := vm.Run(widget, f.vparams, nil)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(seedArr)+len(res.Output))
	buf = append(buf, seedArr[:]...)
	buf = append(buf, res.Output...)
	cur := f.gate.Sum(buf)

	// Iterate the remaining widgets if chaining is configured, so the
	// reported digest always equals Hash(input).
	for i := 1; i < f.widgets; i++ {
		out, err := f.runWidget(perfprox.Seed(cur), nil)
		if err != nil {
			return nil, err
		}
		chain := make([]byte, 0, len(cur)+len(out))
		chain = append(chain, cur[:]...)
		chain = append(chain, out...)
		cur = f.gate.Sum(chain)
	}

	return &Trace{
		Input:  append([]byte(nil), input...),
		Seed:   seed,
		Fields: perfprox.Split(seed),
		Source: src,
		Widget: widget,
		Result: res,
		Digest: cur,
	}, nil
}

// ExtractGateCollision is algorithm B from the paper's Theorem 1 proof:
// given a collision (x0, x1) on H, it produces a collision on the hash
// gate G with certainty. It returns ok=false if (x0, x1) is not actually a
// collision on H.
//
//	Case 1: G(x0) == G(x1) -> (x0, x1) collide on G directly.
//	Case 2: seeds differ   -> (s0||W(s0), s1||W(s1)) collide on the
//	                          second gate application (walking the chain
//	                          for multi-widget configurations).
func (f *Func) ExtractGateCollision(x0, x1 []byte) (a, b []byte, ok bool, err error) {
	if string(x0) == string(x1) {
		return nil, nil, false, nil
	}
	h0, err := f.Hash(x0)
	if err != nil {
		return nil, nil, false, err
	}
	h1, err := f.Hash(x1)
	if err != nil {
		return nil, nil, false, err
	}
	if h0 != h1 {
		return nil, nil, false, nil
	}

	s0 := f.gate.Sum(x0)
	s1 := f.gate.Sum(x1)
	if s0 == s1 {
		// Case 1: the first gate collided.
		return append([]byte(nil), x0...), append([]byte(nil), x1...), true, nil
	}
	// Case 2: some later gate application collided; walk the chain until
	// the gate outputs meet (guaranteed by H(x0) == H(x1)).
	m0, err := f.gateMessage(s0)
	if err != nil {
		return nil, nil, false, err
	}
	m1, err := f.gateMessage(s1)
	if err != nil {
		return nil, nil, false, err
	}
	for i := 1; i < f.widgets; i++ {
		c0, c1 := f.gate.Sum(m0), f.gate.Sum(m1)
		if c0 == c1 {
			break
		}
		m0, err = f.gateMessage(c0)
		if err != nil {
			return nil, nil, false, err
		}
		m1, err = f.gateMessage(c1)
		if err != nil {
			return nil, nil, false, err
		}
	}
	return m0, m1, true, nil
}

// gateMessage returns s || W(s), the message fed to the second gate.
func (f *Func) gateMessage(s Digest) ([]byte, error) {
	out, err := f.runWidget(perfprox.Seed(s), nil)
	if err != nil {
		return nil, err
	}
	return append(append(make([]byte, 0, len(s)+len(out)), s[:]...), out...), nil
}
