package core

import (
	"encoding/binary"
	"errors"
	"runtime"
	"testing"
	"time"
)

var errDigestMismatch = errors.New("digest mismatch")

// refSession returns a session with the fill helper disabled — the
// single-threaded reference pipeline every overlapped digest must match.
func refSession(f *Func) *Session {
	s := f.NewSession()
	s.disableFill()
	return s
}

// TestOverlappedMatchesReference pins the tentpole's correctness claim:
// a session whose scratch-memory fill runs on the helper goroutine
// produces bit-identical digests to the single-threaded reference
// pipeline, across seeds (every input draws a fresh memory seed) and
// across working-set sizes (two profiles with different WorkingSet).
func TestOverlappedMatchesReference(t *testing.T) {
	wide := tinyProfile()
	wide.Name = "tiny-wide"
	wide.WorkingSet = 32 << 10
	for _, prof := range []*struct {
		name string
		f    *Func
	}{
		{"tiny", tinyFunc(t, Options{})},
		{"wide", tinyFunc(t, Options{Profile: wide})},
	} {
		overlapped := prof.f.NewSession()
		defer overlapped.Close()
		reference := refSession(prof.f)
		if overlapped.fillReq == nil {
			t.Fatalf("%s: overlapped session has no fill helper", prof.name)
		}
		if reference.fillReq != nil {
			t.Fatalf("%s: reference session still has a fill helper", prof.name)
		}
		input := make([]byte, 16)
		for i := 0; i < 24; i++ {
			binary.LittleEndian.PutUint64(input, uint64(i))
			want, err := reference.Hash(input)
			if err != nil {
				t.Fatal(err)
			}
			got, err := overlapped.Hash(input)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s input %d: overlapped digest %x != reference %x",
					prof.name, i, got[:8], want[:8])
			}
		}
	}
}

// FuzzOverlappedVsReference drives arbitrary inputs through an
// overlapped and a reference session of the same Func and requires
// bit-identical digests. The input is hashed to a seed by the gate, so
// every byte of fuzz input perturbs the widget, its memory seed and its
// memory contents.
func FuzzOverlappedVsReference(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 1, 2, 3, 4, 5, 6, 7, 8})

	fn := tinyFunc(f, Options{})
	overlapped := fn.NewSession()
	reference := refSession(fn)
	f.Cleanup(overlapped.Close)

	f.Fuzz(func(t *testing.T, input []byte) {
		want, err := reference.Hash(input)
		if err != nil {
			t.Fatal(err)
		}
		got, err := overlapped.Hash(input)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("overlapped digest %x != reference %x", got[:8], want[:8])
		}
	})
}

// TestSessionConcurrentOverlap exercises many overlapped sessions of one
// Func hashing in parallel — the concurrency the CI race job watches:
// each session's helper goroutine must touch only its own machine.
func TestSessionConcurrentOverlap(t *testing.T) {
	f := tinyFunc(t, Options{})
	input := []byte("concurrent overlap probe")
	want, err := f.Hash(input)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			s := f.NewSession()
			defer s.Close()
			for i := 0; i < 8; i++ {
				got, err := s.Hash(input)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- errDigestMismatch
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// settledGoroutines returns the goroutine count once it has held steady
// for a few GC rounds — sampling a baseline while goroutines from earlier
// tests are still winding down would inflate it and turn the live-helper
// lower bound into a flake.
func settledGoroutines(t *testing.T) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	prev := runtime.NumGoroutine()
	stable := 0
	for time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		runtime.GC()
		n := runtime.NumGoroutine()
		if n == prev {
			if stable++; stable >= 3 {
				return n
			}
		} else {
			stable, prev = 0, n
		}
	}
	return prev
}

// goroutinesSettleTo polls until the goroutine count drops to at most
// want, forcing GC each round so finalizer-driven releases can run.
func goroutinesSettleTo(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle to <= %d (have %d):\n%s",
				want, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionCloseReleasesHelper asserts the fill helper goroutine exits
// on Close — the leak test for the session's one background resource.
func TestSessionCloseReleasesHelper(t *testing.T) {
	f := tinyFunc(t, Options{})
	base := settledGoroutines(t)

	sessions := make([]*Session, 8)
	for i := range sessions {
		sessions[i] = f.NewSession()
		if _, err := sessions[i].Hash([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := runtime.NumGoroutine(); n < base+len(sessions) {
		t.Fatalf("expected >= %d goroutines with %d sessions live, have %d",
			base+len(sessions), len(sessions), n)
	}
	for _, s := range sessions {
		s.Close()
		s.Close() // idempotent
	}
	goroutinesSettleTo(t, base)
}

// TestDroppedSessionReleasesHelper asserts the finalizer path: sessions
// that become garbage without an explicit Close (a sync.Pool eviction,
// an abandoned worker) still release their helper goroutine.
func TestDroppedSessionReleasesHelper(t *testing.T) {
	f := tinyFunc(t, Options{})
	base := settledGoroutines(t)
	// Sessions are minted and dropped inside a helper frame so no stack
	// slot of this function can conservatively keep the last one alive.
	spawnAndDrop := func(i int) {
		s := f.NewSession()
		if _, err := s.Hash([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		spawnAndDrop(i)
	}
	goroutinesSettleTo(t, base)
}
