package core

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"hashcore/internal/gate"
	"hashcore/internal/isa"
	"hashcore/internal/perfprox"
	"hashcore/internal/profile"
	"hashcore/internal/vm"
	"hashcore/internal/workload"
)

// tinyProfile is a fast profile for collision-search tests: widgets of
// ~2000 dynamic instructions over a 4 KiB working set.
func tinyProfile() *profile.Profile {
	return &profile.Profile{
		Name: "tiny",
		Mix: map[isa.Class]float64{
			isa.ClassIntALU: 0.55,
			isa.ClassIntMul: 0.05,
			isa.ClassFPALU:  0.05,
			isa.ClassLoad:   0.12,
			isa.ClassStore:  0.05,
			isa.ClassBranch: 0.15,
			isa.ClassVector: 0.03,
		},
		BranchTaken:     0.6,
		BranchDataDep:   0.4,
		BranchBias:      0.5,
		MemSequential:   0.4,
		MemStrided:      0.2,
		MemRandom:       0.3,
		MemPointerChase: 0.1,
		WorkingSet:      4 << 10,
		BlockMean:       5,
		BlockStd:        2,
		DepDist:         3,
		TargetDynamic:   2000,
	}
}

func tinyFunc(t testing.TB, opts Options) *Func {
	t.Helper()
	if opts.Profile == nil {
		opts.Profile = tinyProfile()
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New accepted missing profile")
	}
	if _, err := New(Options{Profile: tinyProfile(), Widgets: 100}); err == nil {
		t.Error("New accepted 100 widgets")
	}
	bad := tinyProfile()
	bad.TargetDynamic = 1
	if _, err := New(Options{Profile: bad}); err == nil {
		t.Error("New accepted invalid profile")
	}
}

func TestHashDeterministic(t *testing.T) {
	f := tinyFunc(t, Options{})
	a, err := f.Hash([]byte("block header"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Hash([]byte("block header"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same input hashed to different digests")
	}
	c, err := f.Hash([]byte("block headeR"))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different inputs hashed to the same digest")
	}
}

func TestHashConcurrentUse(t *testing.T) {
	f := tinyFunc(t, Options{})
	want := f.Sum([]byte("shared"))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := f.Hash([]byte("shared"))
			if err != nil {
				errs <- err
				return
			}
			if got != want {
				errs <- bytes.ErrTooLarge // sentinel misuse avoided below
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent hashing failed: %v", err)
	}
}

// TestStructuralEquation verifies H(x) == G(s || W(s)) by recomputing the
// final gate application from Trace intermediates.
func TestStructuralEquation(t *testing.T) {
	f := tinyFunc(t, Options{})
	tr, err := f.Trace([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	g := gate.SHA256{}
	msg := append(append([]byte(nil), tr.Seed[:]...), tr.Result.Output...)
	manual := g.Sum(msg)
	if manual != tr.Digest {
		t.Fatal("Trace digest != G(s || W(s))")
	}
	direct, err := f.Hash([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if direct != tr.Digest {
		t.Fatal("Trace digest != Hash digest")
	}
	if tr.Seed != g.Sum([]byte("x")) {
		t.Fatal("Trace seed != G(x)")
	}
}

func TestTraceFields(t *testing.T) {
	f := tinyFunc(t, Options{})
	tr, err := f.Trace([]byte("inspect me"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Source == "" {
		t.Error("trace has no source text")
	}
	if tr.Widget == nil || tr.Widget.NumInstrs() == 0 {
		t.Error("trace has no widget")
	}
	if tr.Result == nil || len(tr.Result.Output) == 0 {
		t.Error("trace has no execution result")
	}
	want := perfprox.Split(tr.Seed)
	if tr.Fields != want {
		t.Error("trace fields do not match Split(seed)")
	}
	if binary.BigEndian.Uint32(tr.Seed[0:4]) != want.IntALU {
		t.Error("field/seed byte mismatch")
	}
}

func TestSourcePipelineMatchesDirect(t *testing.T) {
	direct := tinyFunc(t, Options{})
	viaSrc := tinyFunc(t, Options{UseSourcePipeline: true})
	for _, input := range []string{"", "a", "block 42"} {
		a, err := direct.Hash([]byte(input))
		if err != nil {
			t.Fatal(err)
		}
		b, err := viaSrc.Hash([]byte(input))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("input %q: source pipeline digest differs from direct", input)
		}
	}
}

func TestWidgetChaining(t *testing.T) {
	one := tinyFunc(t, Options{Widgets: 1})
	two := tinyFunc(t, Options{Widgets: 2})
	in := []byte("chained")
	d1, err := one.Hash(in)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := two.Hash(in)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("1-widget and 2-widget digests coincide")
	}
	d2b, err := two.Hash(in)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d2b {
		t.Fatal("chained hashing is nondeterministic")
	}
	trTwo, err := two.Trace(in)
	if err != nil {
		t.Fatal(err)
	}
	if trTwo.Digest != d2 {
		t.Fatal("chained Trace digest != Hash")
	}
}

func TestHashObserved(t *testing.T) {
	f := tinyFunc(t, Options{})
	var count countObserver
	d, err := f.HashObserved([]byte("obs"), &count)
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("observer saw no events")
	}
	plain, err := f.Hash([]byte("obs"))
	if err != nil {
		t.Fatal(err)
	}
	if d != plain {
		t.Fatal("observed hash differs from plain hash")
	}
}

type countObserver int

func (c *countObserver) OnRetire(*vm.Event) { *c++ }

func TestAccessors(t *testing.T) {
	f := tinyFunc(t, Options{})
	if f.GateName() != "sha256" {
		t.Errorf("GateName = %q", f.GateName())
	}
	if f.ProfileName() != "tiny" {
		t.Errorf("ProfileName = %q", f.ProfileName())
	}
}

// TestTheorem1Reduction is the executable version of the paper's security
// proof: with a deliberately weakened gate we can find collisions on H by
// brute force, and algorithm B (ExtractGateCollision) must then produce a
// collision on G itself.
func TestTheorem1Reduction(t *testing.T) {
	weak := gate.Truncated{Bits: 12}
	f := tinyFunc(t, Options{Gate: weak})

	// Brute-force a collision on H (about 2^6 expected queries for a
	// 12-bit gate via birthday).
	seen := make(map[Digest][]byte)
	var x0, x1 []byte
	for i := 0; i < 1<<14 && x1 == nil; i++ {
		input := binary.BigEndian.AppendUint32(nil, uint32(i))
		h, err := f.Hash(input)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[h]; ok {
			x0, x1 = prev, input
			break
		}
		seen[h] = input
	}
	if x1 == nil {
		t.Fatal("no collision found on H with a 12-bit gate — that should be easy")
	}

	a, b, ok, err := f.ExtractGateCollision(x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ExtractGateCollision rejected a genuine H collision")
	}
	if bytes.Equal(a, b) {
		t.Fatal("reduction returned identical messages")
	}
	if weak.Sum(a) != weak.Sum(b) {
		t.Fatal("reduction output is not a collision on G — Theorem 1 violated")
	}
}

func TestExtractGateCollisionRejectsNonCollisions(t *testing.T) {
	f := tinyFunc(t, Options{})
	if _, _, ok, err := f.ExtractGateCollision([]byte("a"), []byte("b")); err != nil || ok {
		t.Fatalf("non-collision accepted (ok=%v, err=%v)", ok, err)
	}
	if _, _, ok, err := f.ExtractGateCollision([]byte("same"), []byte("same")); err != nil || ok {
		t.Fatalf("identical inputs accepted (ok=%v, err=%v)", ok, err)
	}
}

func TestTheorem1ReductionChained(t *testing.T) {
	weak := gate.Truncated{Bits: 10}
	f := tinyFunc(t, Options{Gate: weak, Widgets: 2})
	seen := make(map[Digest][]byte)
	var x0, x1 []byte
	for i := 0; i < 1<<13 && x1 == nil; i++ {
		input := binary.BigEndian.AppendUint32(nil, uint32(i))
		h, err := f.Hash(input)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[h]; ok {
			x0, x1 = prev, input
			break
		}
		seen[h] = input
	}
	if x1 == nil {
		t.Fatal("no collision found on chained H with a 10-bit gate")
	}
	a, b, ok, err := f.ExtractGateCollision(x0, x1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || bytes.Equal(a, b) || weak.Sum(a) != weak.Sum(b) {
		t.Fatal("chained reduction failed to produce a gate collision")
	}
}

func TestLeelaProfileHash(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size widget hash in -short mode")
	}
	w, err := workload.ByName("leela")
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Options{Profile: w.Profile})
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.Hash([]byte("full scale"))
	if err != nil {
		t.Fatal(err)
	}
	if d == (Digest{}) {
		t.Fatal("zero digest")
	}
}

func BenchmarkHashTiny(b *testing.B) {
	f := tinyFunc(b, Options{})
	var input [8]byte
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(input[:], uint64(i))
		if _, err := f.Hash(input[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashLeela(b *testing.B) {
	w, err := workload.ByName("leela")
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(Options{Profile: w.Profile})
	if err != nil {
		b.Fatal(err)
	}
	var input [8]byte
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(input[:], uint64(i))
		if _, err := f.Hash(input[:]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHashTimedMatchesHash asserts the instrumented session path produces
// bit-identical digests to the plain one and accumulates a sane phase
// split: both phases nonzero, retired counted, one accumulation per call.
func TestHashTimedMatchesHash(t *testing.T) {
	f, err := New(Options{Profile: tinyProfile()})
	if err != nil {
		t.Fatal(err)
	}
	s := f.NewSession()
	var pt PhaseTimings
	for i := 0; i < 3; i++ {
		input := []byte{byte(i), 1, 2, 3}
		want, err := f.Hash(input)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.HashTimed(input, &pt)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("input %d: HashTimed digest %x != Hash digest %x", i, got, want)
		}
	}
	if pt.Hashes != 3 {
		t.Errorf("PhaseTimings.Hashes = %d, want 3", pt.Hashes)
	}
	if pt.GenNs <= 0 || pt.ExecNs <= 0 {
		t.Errorf("phase split not accumulated: gen %d ns, exec %d ns", pt.GenNs, pt.ExecNs)
	}
	if pt.Retired == 0 {
		t.Error("PhaseTimings.Retired = 0, want > 0")
	}
}
