package perfprox

import (
	"errors"
	"fmt"

	"hashcore/internal/asm"
	"hashcore/internal/isa"
	"hashcore/internal/profile"
	"hashcore/internal/prog"
	"hashcore/internal/rng"
)

// Params tunes the generator. The zero value selects defaults.
type Params struct {
	// Noise is the maximum fractional positive noise added to each
	// noise-carrying instruction class (0.5 means a class budget can grow
	// by up to 50%). Default 0.5.
	Noise float64
	// LoopTrips is the outer-loop trip count; the per-iteration static
	// code size is TargetDynamic/LoopTrips. Default 64.
	LoopTrips int
	// ArmSize is the number of instructions in each branch-diamond arm.
	// Default 3.
	ArmSize int
}

func (p Params) withDefaults() Params {
	if p.Noise == 0 {
		p.Noise = 0.5
	}
	if p.LoopTrips == 0 {
		p.LoopTrips = 64
	}
	if p.ArmSize == 0 {
		p.ArmSize = 3
	}
	return p
}

// Generator produces widgets for one target profile. It is immutable after
// construction and safe for concurrent use (each Generate call carries its
// own state).
type Generator struct {
	prof   *profile.Profile
	params Params
}

// NewGenerator validates the profile and returns a widget generator.
func NewGenerator(prof *profile.Profile, params Params) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("perfprox: %w", err)
	}
	p := params.withDefaults()
	if p.Noise < 0 || p.Noise > 4 {
		return nil, fmt.Errorf("perfprox: noise amplitude %v out of range [0,4]", p.Noise)
	}
	if p.LoopTrips < 2 || p.LoopTrips > 1<<16 {
		return nil, fmt.Errorf("perfprox: loop trips %d out of range", p.LoopTrips)
	}
	if p.ArmSize < 1 || p.ArmSize > 64 {
		return nil, fmt.Errorf("perfprox: arm size %d out of range", p.ArmSize)
	}
	return &Generator{prof: prof.Clone(), params: p}, nil
}

// Profile returns (a copy of) the target profile.
func (g *Generator) Profile() *profile.Profile { return g.prof.Clone() }

// Scratch holds every piece of mutable state one widget generation needs:
// the PRNGs, class budgets, program builder and the output program. The
// zero value is ready to use. Reusing a Scratch across GenerateInto calls
// reaches a steady state where generation performs no heap allocation;
// the price is that each generated program is only valid until the next
// GenerateInto on the same Scratch. A Scratch is not safe for concurrent
// use — give each goroutine its own (core.Session does exactly that).
type Scratch struct {
	st genState
}

// Generate builds the widget program for the given hash seed. The
// returned program is independent of the generator and never invalidated
// (it owns freshly allocated storage via its private scratch), and is
// fully materialized — per-block Instrs and the flat stream both filled —
// so it can be encoded, disassembled and inspected.
func (g *Generator) Generate(seed Seed) (*prog.Program, error) {
	var sc Scratch
	sc.st.reset(g.prof, g.params, Split(seed))
	p, err := sc.st.run(true)
	if err != nil {
		return nil, fmt.Errorf("perfprox: generating widget: %w", err)
	}
	return p, nil
}

// GenerateInto builds the widget program for the given hash seed using
// (and mutating) sc's storage. The returned program aliases sc and is
// invalidated by the next GenerateInto call on the same Scratch; callers
// needing longer-lived programs should use Generate. The instruction
// stream drawn is bit-identical to Generate for every seed, but the
// program is materialized flat-only: Flat and Stats are filled (all the
// VM's trusted-load path and the JIT consume), while the per-block
// Instrs views stay empty — hashing sessions execute widgets, they never
// encode or disassemble them, and skipping the block-shaped copy is a
// measurable slice of generation time.
func (g *Generator) GenerateInto(seed Seed, sc *Scratch) (*prog.Program, error) {
	st := &sc.st
	st.reset(g.prof, g.params, Split(seed))
	p, err := st.run(false)
	if err != nil {
		return nil, fmt.Errorf("perfprox: generating widget: %w", err)
	}
	return p, nil
}

// MemoryPlan reports the scratch-memory declaration — size in bytes and
// content seed — that the widget generated from seed will carry. It is
// derived from the hash seed and the profile alone, with no generation
// work, and by construction equals the MemSize and MemSeed of the program
// GenerateInto returns for the same seed (the generator passes the same
// two values to its builder; TestMemoryPlanMatchesGenerated pins this). A
// hashing session uses it to restore the VM's scratch-memory image
// concurrently with generation and compilation (vm.Machine.PrepareMemory).
func (g *Generator) MemoryPlan(seed Seed) (size int, memSeed uint64) {
	return g.prof.WorkingSet, expandMemSeed(Split(seed).Mem)
}

// GenerateSource builds the widget and renders it as assembly text — the
// analogue of the paper's generated C source. Compile it back with
// asm.Assemble.
func (g *Generator) GenerateSource(seed Seed) (string, error) {
	p, err := g.Generate(seed)
	if err != nil {
		return "", err
	}
	return asm.Disassemble(p), nil
}

// Register conventions inside generated widgets. r0..r4 form the general
// integer pool; the rest have fixed roles so the generator can emit
// self-contained code.
const (
	regPoolSize = 5  // r0..r4: general integer pool
	regShiftB   = 5  // second rotate amount
	regShiftA   = 6  // first rotate amount
	regThresh   = 7  // data-dependent branch threshold
	regMask     = 8  // low-bits mask (255)
	regScratch  = 9  // branch condition scratch
	regChase    = 10 // pointer-chase register
	regEntropy  = 11 // per-iteration entropy state
	regStride   = 12 // strided access base
	regSeq      = 13 // sequential access base
	regZero     = 14 // always zero
	regCounter  = 15 // outer loop counter
)

// genState carries all mutable state for one widget generation. It is
// embedded in Scratch and fully re-initialized by reset, so the same
// value can drive any number of generations; the PRNGs, budgets and
// recency rings are fixed-size values (no maps, no per-generation
// allocation — per-class state is indexed arrays, which also keeps the
// emission loop free of map-hashing overhead).
type genState struct {
	prof   *profile.Profile
	params Params
	fields Fields

	bbv       rng.Xoshiro256 // code structure decisions
	mem       rng.Xoshiro256 // memory pattern decisions
	branchRng rng.Xoshiro256 // branch behaviour decisions

	b prog.Builder

	// Per-iteration static budgets by class (branch handled separately),
	// the one-time residuals, and the emitBody working copy.
	budget   [isa.NumClasses]int
	residual [isa.NumClasses]int
	work     [isa.NumClasses]int

	nDiamonds  int // diamonds per iteration
	nDataDep   int // of which data-dependent
	nStaticTkn int // statically always-taken diamonds
	nStatic    int // statically never/always-taken diamonds total

	thresh int64 // data-dep comparison threshold (0..255)

	// Rotating static displacement counters so accesses spread out.
	seqOff, strideOff int

	// Dependency-distance machinery: the most recent destination of each
	// pool (the only recency depth pickSrc's 1/DepDist draw ever reads),
	// plus that probability precomputed once per generation so the source
	// pickers avoid a float divide per drawn operand.
	lastIntDst uint8
	lastFPDst  uint8
	lastVecDst uint8
	invDepDist float64

	floadProb  float64 // probability a load is an fload
	fstoreProb float64 // probability a store is an fstore

	// Cumulative access-pattern weights (see rng.PickCum), hoisted out of
	// the per-instruction emit paths by planMemory: the weights are fixed
	// per profile, and rebuilding + summing the vectors per emitted load
	// and store was a measurable share of generation time.
	loadPatCum  [4]float64
	storePatCum [3]float64

	// Reusable emission scratch (capacity retained across generations).
	kinds      []diamondKind
	armClasses []isa.Class
	out        prog.Program
}

// reset re-initializes every generation-scoped field; storage-bearing
// fields (builder, kinds, armClasses, out) keep their capacity.
func (st *genState) reset(prof *profile.Profile, params Params, fields Fields) {
	st.prof = prof
	st.params = params
	st.fields = fields
	st.bbv.Seed(uint64(fields.BBV))
	st.mem.Seed(uint64(fields.Mem))
	st.branchRng.Seed(uint64(fields.Branch))
	st.budget = [isa.NumClasses]int{}
	st.residual = [isa.NumClasses]int{}
	st.work = [isa.NumClasses]int{}
	st.nDiamonds, st.nDataDep, st.nStaticTkn, st.nStatic = 0, 0, 0, 0
	st.thresh = 0
	st.seqOff, st.strideOff = 0, 0
	st.lastIntDst, st.lastFPDst, st.lastVecDst = 0, 0, 0
	st.invDepDist = 0
	if prof.DepDist > 0 {
		st.invDepDist = 1 / prof.DepDist
	}
	st.floadProb, st.fstoreProb = 0, 0
}

var errBudget = errors.New("perfprox: class budgets infeasible for structure overhead")

// run executes the generation pipeline. fillBlocks selects full
// materialization (Generate: inspectable programs) versus flat-only
// (GenerateInto: executable programs on the hashing hot path); the drawn
// instruction stream is identical either way.
func (st *genState) run(fillBlocks bool) (*prog.Program, error) {
	st.computeBudgets()
	if err := st.planBranches(); err != nil {
		return nil, err
	}
	st.planMemory()

	st.b.Reset(st.prof.WorkingSet, st.memSeed())
	st.b.NewBlock() // entry; falls through to the loop head
	st.emitEntry()
	if err := st.emitBody(); err != nil {
		return nil, err
	}
	if fillBlocks {
		if err := st.b.BuildInto(&st.out); err != nil {
			return nil, err
		}
	} else if err := st.b.BuildFlatInto(&st.out); err != nil {
		return nil, err
	}
	return &st.out, nil
}

// memSeed expands the 32-bit memory field into the 64-bit scratch-memory
// content seed.
func (st *genState) memSeed() uint64 {
	return expandMemSeed(st.fields.Mem)
}

// expandMemSeed is the single definition of the memory-field expansion,
// shared by generation and MemoryPlan so the two can never drift.
func expandMemSeed(field uint32) uint64 {
	sm := rng.SplitMix64{}
	sm.Seed(uint64(field))
	return sm.Next()
}

// computeBudgets turns the profile mix plus seed noise into per-iteration
// integer budgets. Noise is positive-only and applies to the five Table I
// count classes; branch and vector counts stay at their base values.
func (st *genState) computeBudgets() {
	T := float64(st.prof.TargetDynamic)
	L := st.params.LoopTrips
	noise := func(field uint32) float64 { return 1 + st.params.Noise*Unit(field) }
	set := func(class isa.Class, d float64) {
		per := int(d) / L
		st.budget[class] = per
		st.residual[class] = int(d) - per*L
	}

	set(isa.ClassIntALU, T*st.prof.Mix[isa.ClassIntALU]*noise(st.fields.IntALU))
	set(isa.ClassIntMul, T*st.prof.Mix[isa.ClassIntMul]*noise(st.fields.IntMul))
	set(isa.ClassFPALU, T*st.prof.Mix[isa.ClassFPALU]*noise(st.fields.FPALU))
	set(isa.ClassLoad, T*st.prof.Mix[isa.ClassLoad]*noise(st.fields.Loads))
	set(isa.ClassStore, T*st.prof.Mix[isa.ClassStore]*noise(st.fields.Stores))
	set(isa.ClassBranch, T*st.prof.Mix[isa.ClassBranch])
	set(isa.ClassVector, T*st.prof.Mix[isa.ClassVector])
}

// planBranches allocates the per-iteration branch-class budget to the
// outer-loop branch, diamonds (one conditional + one jump each) and
// computes the static taken/not-taken split that matches the profile's
// taken rate.
func (st *genState) planBranches() error {
	nBranch := st.budget[isa.ClassBranch]
	if nBranch < 1 {
		nBranch = 1 // the loop branch always exists
	}
	st.nDiamonds = (nBranch - 1) / 2
	condBranches := st.nDiamonds + 1 // diamonds + loop branch

	st.nDataDep = int(float64(st.nDiamonds)*st.prof.BranchDataDep + 0.5)
	if st.nDataDep > st.nDiamonds {
		st.nDataDep = st.nDiamonds
	}
	st.nStatic = st.nDiamonds - st.nDataDep

	// Perturb the data-dependent bias with the Table I branch field.
	biasNoise := (Unit(st.fields.Branch) - 0.5) * 0.125
	bias := st.prof.BranchBias + biasNoise
	if bias < 0.02 {
		bias = 0.02
	}
	if bias > 0.98 {
		bias = 0.98
	}
	st.thresh = int64(bias*256 + 0.5)
	if st.thresh < 1 {
		st.thresh = 1
	}
	if st.thresh > 255 {
		st.thresh = 255
	}

	// Choose how many static diamonds are always-taken so the overall
	// conditional-branch taken rate approximates the profile's.
	wantTaken := st.prof.BranchTaken * float64(condBranches)
	expected := 1.0 + float64(st.nDataDep)*bias // loop branch + data-dep expectation
	k := int(wantTaken - expected + 0.5)
	if k < 0 {
		k = 0
	}
	if k > st.nStatic {
		k = st.nStatic
	}
	st.nStaticTkn = k

	// Deduct fixed ALU overheads: 3 condition instructions per data-dep
	// diamond + 7 per-iteration bookkeeping instructions (entropy stir,
	// pool injection, chase restart, pointer advances, loop counter).
	overhead := 3*st.nDataDep + 7
	st.budget[isa.ClassIntALU] -= overhead
	if st.budget[isa.ClassIntALU] < 0 {
		return fmt.Errorf("%w: intalu budget %d < overhead %d",
			errBudget, st.budget[isa.ClassIntALU]+overhead, overhead)
	}
	return nil
}

// planMemory derives per-access-pattern probabilities. Each emitted load
// chooses its pattern from the memory PRNG with the profile's fractions
// (stores fold the chase share into random, since a "store chase" is not a
// meaningful pattern).
func (st *genState) planMemory() {
	// FP flavouring of memory ops tracks the FP intensity of the profile.
	fpIntensity := st.prof.Mix[isa.ClassFPALU]
	st.floadProb = fpIntensity * 2
	if st.floadProb > 0.6 {
		st.floadProb = 0.6
	}
	st.fstoreProb = st.floadProb

	// Materialize the cumulative pattern-weight tables the emit paths
	// sample per access (accumulated exactly as rng.Pick would, so the
	// drawn patterns are bit-identical to the former per-call vectors).
	loadW := [4]float64{
		st.prof.MemSequential, st.prof.MemStrided, st.prof.MemRandom, st.prof.MemPointerChase,
	}
	storeW := [3]float64{
		st.prof.MemSequential, st.prof.MemStrided,
		st.prof.MemRandom + st.prof.MemPointerChase, // chase folds into random
	}
	rng.CumWeights(st.loadPatCum[:0], loadW[:])
	rng.CumWeights(st.storePatCum[:0], storeW[:])
}
