package perfprox

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"hashcore/internal/asm"
	"hashcore/internal/isa"
	"hashcore/internal/profile"
	"hashcore/internal/vm"
	"hashcore/internal/workload"
)

// leelaProfile fetches the reference profile the paper's experiments use.
func leelaProfile(t testing.TB) *profile.Profile {
	t.Helper()
	w, err := workload.ByName("leela")
	if err != nil {
		t.Fatal(err)
	}
	return w.Profile
}

func newLeelaGen(t testing.TB) *Generator {
	t.Helper()
	g, err := NewGenerator(leelaProfile(t), Params{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func seedFromUint64(v uint64) Seed {
	var s Seed
	binary.BigEndian.PutUint64(s[0:], v)
	binary.BigEndian.PutUint64(s[8:], v^0xdeadbeef)
	binary.BigEndian.PutUint64(s[16:], v*0x9e3779b97f4a7c15)
	binary.BigEndian.PutUint64(s[24:], v+12345)
	return s
}

// TestSplitTableI verifies the exact Table I bit allocation.
func TestSplitTableI(t *testing.T) {
	var seed Seed
	for i := 0; i < 8; i++ {
		binary.BigEndian.PutUint32(seed[i*4:], uint32(i+1)*0x11111111)
	}
	f := Split(seed)
	checks := []struct {
		name string
		got  uint32
		want uint32
	}{
		{"IntALU (bits 0-31)", f.IntALU, 0x11111111},
		{"IntMul (bits 32-63)", f.IntMul, 0x22222222},
		{"FPALU (bits 64-95)", f.FPALU, 0x33333333},
		{"Loads (bits 96-127)", f.Loads, 0x44444444},
		{"Stores (bits 128-159)", f.Stores, 0x55555555},
		{"Branch (bits 160-191)", f.Branch, 0x66666666},
		{"BBV (bits 192-223)", f.BBV, 0x77777777},
		{"Mem (bits 224-255)", f.Mem, 0x88888888},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %#x, want %#x", c.name, c.got, c.want)
		}
	}
}

func TestUnit(t *testing.T) {
	if got := Unit(0); got != 0 {
		t.Errorf("Unit(0) = %v", got)
	}
	if got := Unit(1 << 31); got != 0.5 {
		t.Errorf("Unit(2^31) = %v, want 0.5", got)
	}
	if got := Unit(^uint32(0)); got >= 1 || got < 0.999 {
		t.Errorf("Unit(max) = %v, want just under 1", got)
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	prof := leelaProfile(t)
	if _, err := NewGenerator(prof, Params{Noise: -1}); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NewGenerator(prof, Params{LoopTrips: 1}); err == nil {
		t.Error("loop trips 1 accepted")
	}
	if _, err := NewGenerator(prof, Params{ArmSize: 1000}); err == nil {
		t.Error("giant arm size accepted")
	}
	bad := prof.Clone()
	bad.Mix[isa.ClassIntALU] = 5
	if _, err := NewGenerator(bad, Params{}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := newLeelaGen(t)
	seed := seedFromUint64(42)
	p1, err := g.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1.Encode(), p2.Encode()) {
		t.Fatal("same seed produced different widgets")
	}
}

func TestDifferentSeedsProduceDifferentWidgets(t *testing.T) {
	g := newLeelaGen(t)
	p1, err := g.Generate(seedFromUint64(1))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g.Generate(seedFromUint64(2))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(p1.Encode(), p2.Encode()) {
		t.Fatal("different seeds produced identical widgets")
	}
}

func TestGeneratedWidgetRunsToCompletion(t *testing.T) {
	g := newLeelaGen(t)
	p, err := g.Generate(seedFromUint64(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("generated widget invalid: %v", err)
	}
	res, err := vm.Run(p, vm.Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("widget hit the instruction budget")
	}
	if res.Retired < 100_000 {
		t.Errorf("widget retired only %d instructions", res.Retired)
	}
}

// TestZeroSeedMatchesBaseProfile: a zero seed adds zero noise, so the
// measured mix should track the profile closely.
func TestZeroSeedMatchesBaseProfile(t *testing.T) {
	prof := leelaProfile(t)
	g, err := NewGenerator(prof, Params{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Generate(Seed{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := profile.MeasureFunctional("zero", p, vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d := profile.MixDistance(r.Mix, prof.Mix); d > 0.06 {
		t.Errorf("zero-noise mix distance = %.4f, want <= 0.06\nmeasured: %v", d, r.Mix)
	}
	ratio := float64(r.DynamicInstructions) / float64(prof.TargetDynamic)
	if ratio < 0.93 || ratio > 1.07 {
		t.Errorf("zero-noise dynamic length %d vs target %d (ratio %.3f)",
			r.DynamicInstructions, prof.TargetDynamic, ratio)
	}
}

// TestPositiveNoiseOnly verifies the paper's §V property: seed noise only
// increases non-branch instruction counts, so widgets have at least the
// base counts and proportionally fewer branches.
func TestPositiveNoiseOnly(t *testing.T) {
	prof := leelaProfile(t)
	g, err := NewGenerator(prof, Params{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := g.Generate(Seed{})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := vm.Run(base, vm.Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, seedVal := range []uint64{3, 99, 12345} {
		var seed Seed
		// Saturate the count-noise fields to maximize the effect.
		for i := 0; i < 20; i++ {
			seed[i] = 0xff
		}
		binary.BigEndian.PutUint64(seed[24:], seedVal)
		p, err := g.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := vm.Run(p, vm.Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Retired <= baseRes.Retired {
			t.Errorf("noised widget (%d) not longer than base (%d)", res.Retired, baseRes.Retired)
		}
		for _, class := range []isa.Class{isa.ClassIntALU, isa.ClassIntMul, isa.ClassFPALU, isa.ClassLoad, isa.ClassStore} {
			if res.ClassCounts[class] < baseRes.ClassCounts[class]*98/100 {
				t.Errorf("class %s count %d fell below base %d",
					class, res.ClassCounts[class], baseRes.ClassCounts[class])
			}
		}
		baseBr := float64(baseRes.ClassCounts[isa.ClassBranch]) / float64(baseRes.Retired)
		gotBr := float64(res.ClassCounts[isa.ClassBranch]) / float64(res.Retired)
		if gotBr >= baseBr {
			t.Errorf("branch fraction did not shrink under positive noise: %.4f vs base %.4f",
				gotBr, baseBr)
		}
	}
}

// TestOutputSizeBand checks the §V observation that widget outputs fall in
// roughly a 20-38 KB band with default snapshotting.
func TestOutputSizeBand(t *testing.T) {
	g := newLeelaGen(t)
	for _, sv := range []uint64{1, 2, 3, 4, 5} {
		p, err := g.Generate(seedFromUint64(sv))
		if err != nil {
			t.Fatal(err)
		}
		res, err := vm.Run(p, vm.Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		kb := float64(len(res.Output)) / 1024
		if kb < 18 || kb > 40 {
			t.Errorf("seed %d: output %.1f KB outside the expected band", sv, kb)
		}
	}
}

func TestBranchTakenRateTracksProfile(t *testing.T) {
	prof := leelaProfile(t)
	g, err := NewGenerator(prof, Params{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Generate(seedFromUint64(11))
	if err != nil {
		t.Fatal(err)
	}
	r, err := profile.MeasureFunctional("w", p, vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := r.BranchTaken - prof.BranchTaken; diff > 0.12 || diff < -0.12 {
		t.Errorf("taken rate %.3f vs profile %.3f", r.BranchTaken, prof.BranchTaken)
	}
}

// TestSourcePipelineEquivalence: generating source text and assembling it
// must produce the same widget (and therefore the same output) as direct
// generation — the 3-stage pipeline is just a rendering of the same
// program.
func TestSourcePipelineEquivalence(t *testing.T) {
	g := newLeelaGen(t)
	seed := seedFromUint64(77)
	direct, err := g.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	src, err := g.GenerateSource(seed)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assembling generated source: %v", err)
	}
	if !bytes.Equal(direct.Encode(), compiled.Encode()) {
		t.Fatal("source pipeline produced a different widget than direct generation")
	}
}

// TestSeedAvalanche: flipping a high-order bit of any Table I field must
// change the widget output. (Low-order bits of the five count-noise fields
// can round away inside an integer instruction budget without changing the
// widget — that is by design and harmless: H = G(s||W(s)) hashes the seed
// itself, so collision resistance never relies on W being injective.)
func TestSeedAvalanche(t *testing.T) {
	g := newLeelaGen(t)
	seed := seedFromUint64(123)
	base, err := g.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	baseOut, err := vm.Run(base, vm.Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One near-MSB bit per Table I field: IntALU, IntMul, FPALU, Loads,
	// Stores, Branch, BBV, Mem (plus the Mem LSB, which reseeds memory).
	for _, bit := range []int{0, 33, 65, 100, 129, 161, 200, 230, 255} {
		flipped := seed
		flipped[bit/8] ^= 1 << (bit % 8)
		p, err := g.Generate(flipped)
		if err != nil {
			t.Fatal(err)
		}
		out, err := vm.Run(p, vm.Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(out.Output, baseOut.Output) {
			t.Errorf("flipping seed bit %d left the widget output unchanged", bit)
		}
	}
}

// TestAllWorkloadProfilesGenerate exercises the generator against every
// reference profile (including FP-heavy, vector-heavy and near-zero-memory
// mixes).
func TestAllWorkloadProfilesGenerate(t *testing.T) {
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			g, err := NewGenerator(w.Profile, Params{})
			if err != nil {
				t.Fatal(err)
			}
			p, err := g.Generate(seedFromUint64(5))
			if err != nil {
				t.Fatal(err)
			}
			res, err := vm.Run(p, vm.Params{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatal("widget truncated")
			}
			r, err := profile.MeasureFunctional(w.Name, p, vm.Params{})
			if err != nil {
				t.Fatal(err)
			}
			// Noised mixes shift, but must stay in the neighbourhood.
			if d := profile.MixDistance(r.Mix, w.Profile.Mix); d > 0.25 {
				t.Errorf("mix distance %.3f too large\nmeasured %v", d, r.Mix)
			}
		})
	}
}

func TestGenerateQuickProperties(t *testing.T) {
	g := newLeelaGen(t)
	f := func(a, b uint64) bool {
		var seed Seed
		binary.BigEndian.PutUint64(seed[0:], a)
		binary.BigEndian.PutUint64(seed[24:], b)
		p, err := g.Generate(seed)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		r1, err := vm.Run(p, vm.Params{}, nil)
		if err != nil {
			return false
		}
		r2, err := vm.Run(p, vm.Params{}, nil)
		if err != nil {
			return false
		}
		return !r1.Truncated && bytes.Equal(r1.Output, r2.Output)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	g := newLeelaGen(b)
	for i := 0; i < b.N; i++ {
		if _, err := g.Generate(seedFromUint64(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateAndRun(b *testing.B) {
	g := newLeelaGen(b)
	for i := 0; i < b.N; i++ {
		p, err := g.Generate(seedFromUint64(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vm.Run(p, vm.Params{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMemoryPlanMatchesGenerated pins the contract the overlapped
// session pipeline rests on: the (size, seed) MemoryPlan predicts from
// the hash seed alone must equal the memory declaration of the widget
// that seed generates — otherwise a concurrent pre-fill would be for
// the wrong image and silently wasted.
func TestMemoryPlanMatchesGenerated(t *testing.T) {
	g := newLeelaGen(t)
	for i := uint64(0); i < 32; i++ {
		seed := seedFromUint64(i * 0x9e3779b97f4a7c15)
		size, memSeed := g.MemoryPlan(seed)
		p, err := g.Generate(seed)
		if err != nil {
			t.Fatal(err)
		}
		if size != p.MemSize || memSeed != p.MemSeed {
			t.Fatalf("seed %d: MemoryPlan = (%d, %#x), generated widget declares (%d, %#x)",
				i, size, memSeed, p.MemSize, p.MemSeed)
		}
	}
}
