package perfprox

import (
	"hashcore/internal/isa"
	"hashcore/internal/rng"
)

// intALUOps are the opcodes (with weights) used for integer-ALU fillers.
var intALUOps = []struct {
	op     isa.Opcode
	weight float64
}{
	{isa.OpAdd, 5}, {isa.OpSub, 3}, {isa.OpXor, 4}, {isa.OpAnd, 2},
	{isa.OpOr, 2}, {isa.OpShl, 1.5}, {isa.OpShr, 1.5}, {isa.OpRor, 1.5},
	{isa.OpCmpLT, 1}, {isa.OpCmpEQ, 1}, {isa.OpMov, 1}, {isa.OpAddI, 2},
}

// fpOps are the opcodes used for FP fillers. fcvt pulls integer values
// into the FP domain; ftoi pushes results back, coupling the domains so
// neither is dead code.
var fpOps = []struct {
	op     isa.Opcode
	weight float64
}{
	{isa.OpFAdd, 5}, {isa.OpFSub, 4}, {isa.OpFMul, 4},
	{isa.OpFDiv, 1}, {isa.OpFSqrt, 1}, {isa.OpFMov, 1},
	{isa.OpFCvt, 2}, {isa.OpFToI, 1},
}

// vecOps are the opcodes used for vector fillers.
var vecOps = []struct {
	op     isa.Opcode
	weight float64
}{
	{isa.OpVAdd, 3}, {isa.OpVXor, 3}, {isa.OpVMul, 3},
	{isa.OpVBcast, 2}, {isa.OpVRed, 1},
}

// The weight vectors are invariant, so their cumulative forms are
// materialized once and sampled with rng.PickCum — the per-filler weight
// summation Pick performs used to be a measurable share of generation
// time, and PickCum draws the bit-identical index without it.
var (
	intALUCum = opCumWeights(intALUOps)
	fpCum     = opCumWeights(fpOps)
	vecCum    = opCumWeights(vecOps)
)

func opCumWeights(ops []struct {
	op     isa.Opcode
	weight float64
}) []float64 {
	w := make([]float64, len(ops))
	for i := range ops {
		w[i] = ops[i].weight
	}
	return rng.CumWeights(nil, w)
}

// emitFiller emits one instruction of the requested class into the current
// block, choosing opcode, registers and memory pattern from the
// generation PRNGs.
func (st *genState) emitFiller(class isa.Class) {
	switch class {
	case isa.ClassIntALU:
		st.emitIntALU()
	case isa.ClassIntMul:
		st.emitIntMul()
	case isa.ClassFPALU:
		st.emitFP()
	case isa.ClassLoad:
		st.emitLoad()
	case isa.ClassStore:
		st.emitStore()
	case isa.ClassVector:
		st.emitVector()
	}
}

func (st *genState) emitIntALU() {
	op := intALUOps[st.bbv.PickCum(intALUCum)].op
	dst := st.pickIntDst()
	switch op {
	case isa.OpMov:
		st.b.Op2(op, dst, st.pickIntSrc())
	case isa.OpAddI:
		st.b.AddI(dst, st.pickIntSrc(), int64(st.bbv.Intn(4096))-2048)
	default:
		st.b.Op3(op, dst, st.pickIntSrc(), st.pickIntSrc())
	}
}

func (st *genState) emitIntMul() {
	op := isa.OpMul
	if st.bbv.Intn(4) == 0 {
		op = isa.OpMulH
	}
	st.b.Op3(op, st.pickIntDst(), st.pickIntSrc(), st.pickIntSrc())
}

func (st *genState) emitFP() {
	op := fpOps[st.bbv.PickCum(fpCum)].op
	switch op {
	case isa.OpFCvt:
		st.b.Op2(op, st.pickFPDst(), st.pickIntSrc())
	case isa.OpFToI:
		st.b.Op2(op, st.pickIntDst(), st.pickFPSrc())
	case isa.OpFSqrt, isa.OpFMov:
		st.b.Op2(op, st.pickFPDst(), st.pickFPSrc())
	default:
		st.b.Op3(op, st.pickFPDst(), st.pickFPSrc(), st.pickFPSrc())
	}
}

// memPattern indexes the access-pattern weights for Pick.
const (
	patSeq = iota
	patStride
	patRand
	patChase
)

func (st *genState) emitLoad() {
	// The pattern weights are fixed per profile; planMemory materialized
	// their cumulative form once for the whole generation.
	pattern := st.mem.PickCum(st.loadPatCum[:])
	fp := st.mem.Float64() < st.floadProb

	var base uint8
	var disp int64
	switch pattern {
	case patSeq:
		base = regSeq
		disp = int64(st.seqOff)
		st.seqOff += 8
	case patStride:
		base = regStride
		disp = int64(st.strideOff)
		st.strideOff += 320 // a non-power-of-two stride that misses lines
	case patRand:
		// Alternate between the per-iteration entropy register and a
		// pool register whose value evolves during the iteration.
		if st.mem.Intn(2) == 0 {
			base = regEntropy
		} else {
			base = st.pickIntSrc()
		}
		disp = int64(st.mem.Intn(1 << 16))
	case patChase:
		// Serial chain: the chase register is both address and result.
		st.b.Load(regChase, regChase, 0)
		return
	}
	if fp {
		st.b.FLoad(st.pickFPDst(), base, disp)
	} else {
		st.b.Load(st.pickIntDst(), base, disp)
	}
}

func (st *genState) emitStore() {
	pattern := st.mem.PickCum(st.storePatCum[:])
	fp := st.mem.Float64() < st.fstoreProb

	var base uint8
	var disp int64
	switch pattern {
	case patSeq:
		base = regSeq
		disp = int64(st.seqOff)
		st.seqOff += 8
	case patStride:
		base = regStride
		disp = int64(st.strideOff)
		st.strideOff += 320
	default:
		if st.mem.Intn(2) == 0 {
			base = regEntropy
		} else {
			base = st.pickIntSrc()
		}
		disp = int64(st.mem.Intn(1 << 16))
	}
	if fp {
		st.b.FStore(base, st.pickFPSrc(), disp)
	} else {
		st.b.Store(base, st.pickIntSrc(), disp)
	}
}

func (st *genState) emitVector() {
	op := vecOps[st.bbv.PickCum(vecCum)].op
	switch op {
	case isa.OpVBcast:
		st.b.Op2(op, st.pickVecDst(), st.pickIntSrc())
	case isa.OpVRed:
		st.b.Op2(op, st.pickIntDst(), st.pickVecSrc())
	default:
		st.b.Op3(op, st.pickVecDst(), st.pickVecSrc(), st.pickVecSrc())
	}
}

// pickIntDst chooses a destination from the general integer pool and
// records it as most-recently-written.
func (st *genState) pickIntDst() uint8 {
	dst := uint8(st.bbv.Intn(regPoolSize))
	st.lastIntDst = dst
	return dst
}

// pickIntSrc chooses a source register, biased toward recent destinations
// so the mean dependency distance approximates the profile's DepDist.
func (st *genState) pickIntSrc() uint8 {
	return st.pickSrc(st.lastIntDst, regPoolSize)
}

func (st *genState) pickFPDst() uint8 {
	dst := uint8(st.bbv.Intn(isa.NumFPRegs))
	st.lastFPDst = dst
	return dst
}

func (st *genState) pickFPSrc() uint8 {
	return st.pickSrc(st.lastFPDst, isa.NumFPRegs)
}

func (st *genState) pickVecDst() uint8 {
	dst := uint8(st.bbv.Intn(isa.NumVecRegs))
	st.lastVecDst = dst
	return dst
}

func (st *genState) pickVecSrc() uint8 {
	return st.pickSrc(st.lastVecDst, isa.NumVecRegs)
}

// pickSrc selects a source register: with probability 1/DepDist the most
// recent destination (a tight dependency), otherwise uniform over the
// pool. The probability is precomputed by reset (invDepDist is positive
// exactly when DepDist is), so the per-operand cost is one draw and one
// compare — this runs two-plus times per emitted filler instruction.
func (st *genState) pickSrc(last uint8, poolSize int) uint8 {
	if st.invDepDist > 0 && st.bbv.Float64() < st.invDepDist {
		return last
	}
	return uint8(st.bbv.Intn(poolSize))
}
