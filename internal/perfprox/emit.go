package perfprox

import (
	"hashcore/internal/isa"
	"hashcore/internal/prog"
)

// diamondKind classifies the conditional branch of a diamond.
type diamondKind uint8

const (
	diamondDataDep     diamondKind = iota // data-dependent, biased by thresh
	diamondStaticTaken                    // beq r14,r14: always taken
	diamondStaticNot                      // bne r14,r14: never taken
)

// fillerClasses lists the classes emitBody draws filler instructions
// from, in the fixed order the budget-weighted picker uses.
var fillerClasses = [...]isa.Class{
	isa.ClassIntALU, isa.ClassIntMul, isa.ClassFPALU,
	isa.ClassLoad, isa.ClassStore, isa.ClassVector,
}

// cur tracks the block currently being emitted into; genState.emit* keep it
// up to date.
type emitCtx struct {
	cur prog.Label
}

// emitEntry writes the initialization block: register pools, role
// registers, residual instructions (class budget remainders that do not
// divide evenly by the trip count), then falls through to the body.
func (st *genState) emitEntry() {
	b := &st.b
	b.MovI(regCounter, int64(st.params.LoopTrips))
	b.MovI(regZero, 0)
	b.MovI(regMask, 255)
	b.MovI(regThresh, st.thresh)
	b.MovI(regShiftA, int64(1+st.branchRng.Intn(62)))
	b.MovI(regShiftB, int64(1+st.branchRng.Intn(62)))
	b.MovI(regScratch, 0)

	wsMask := uint64(st.prof.WorkingSet - 1)
	b.MovI(regSeq, int64(st.mem.Next()&wsMask))
	b.MovI(regStride, int64(st.mem.Next()&wsMask))
	b.MovI(regEntropy, int64(st.mem.Next()))
	b.MovI(regChase, int64(st.mem.Next()&wsMask))

	// General pools: deterministic pseudo-random initial values.
	for i := 0; i < regPoolSize; i++ {
		b.MovI(uint8(i), int64(st.bbv.Next()))
	}
	for i := 0; i < isa.NumFPRegs; i++ {
		b.Op2(isa.OpFCvt, uint8(i), uint8(i%regPoolSize))
	}
	for i := 0; i < isa.NumVecRegs; i++ {
		b.Op2(isa.OpVBcast, uint8(i), uint8(i%regPoolSize))
	}

	// Residual instructions (executed once, not per iteration). Branch
	// residuals are dropped: a sub-0.2% undercount, documented in
	// DESIGN.md.
	for _, class := range fillerClasses {
		for i := 0; i < st.residual[class]; i++ {
			st.emitFiller(class)
		}
	}
}

// emitBody writes the loop body: filler instructions grouped into basic
// blocks, diamonds spread evenly through the stream, then the bookkeeping
// tail and the exit block.
func (st *genState) emitBody() error {
	b := &st.b

	// Working copies of the per-iteration budgets for filler classes.
	st.work = [isa.NumClasses]int{}
	totalFiller := 0
	for _, class := range fillerClasses {
		st.work[class] = st.budget[class]
		totalFiller += st.budget[class]
	}

	// Pre-plan diamond kinds, shuffled so kinds interleave through the
	// body rather than clustering.
	kinds := st.kinds[:0]
	for i := 0; i < st.nDataDep; i++ {
		kinds = append(kinds, diamondDataDep)
	}
	for i := 0; i < st.nStaticTkn; i++ {
		kinds = append(kinds, diamondStaticTaken)
	}
	for i := 0; i < st.nStatic-st.nStaticTkn; i++ {
		kinds = append(kinds, diamondStaticNot)
	}
	st.branchRng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	st.kinds = kinds

	interval := totalFiller
	if st.nDiamonds > 0 {
		interval = totalFiller / (st.nDiamonds + 1)
		if interval < 1 {
			interval = 1
		}
	}

	head := b.NewBlock()
	ctx := emitCtx{cur: head}
	blockLeft := st.sampleBlockSize()
	emitted := 0
	nextDiamond := 0

	for totalFiller > 0 {
		class := st.pickClass(totalFiller)
		st.emitFiller(class)
		st.work[class]--
		totalFiller--
		emitted++
		blockLeft--

		if nextDiamond < len(kinds) && emitted >= (nextDiamond+1)*interval {
			st.emitDiamond(&ctx, kinds[nextDiamond], &totalFiller)
			nextDiamond++
			blockLeft = st.sampleBlockSize()
			continue
		}
		if blockLeft <= 0 && totalFiller > 0 {
			// Fallthrough block boundary (basic-block vector structure).
			ctx.cur = b.NewBlock()
			blockLeft = st.sampleBlockSize()
		}
	}
	for nextDiamond < len(kinds) {
		st.emitDiamond(&ctx, kinds[nextDiamond], &totalFiller)
		nextDiamond++
	}

	// Bookkeeping tail: stir entropy, refresh the pool, restart the
	// pointer-chase walk from a fresh region (otherwise the chase settles
	// into a short cycle of the memory's functional graph and turns
	// artificially cache-warm), advance the memory bases, close the loop.
	tail := b.NewBlock()
	ctx.cur = tail
	b.Op3(isa.OpRor, regScratch, regEntropy, regShiftB)
	b.Op3(isa.OpAdd, regEntropy, regScratch, regSeq)
	b.Op3(isa.OpXor, 0, 0, regEntropy)
	b.Op3(isa.OpXor, regChase, regChase, regEntropy)
	b.AddI(regSeq, regSeq, int64(8*(st.budget[isa.ClassLoad]+1)))
	b.AddI(regStride, regStride, 320)
	b.AddI(regCounter, regCounter, -1)
	b.Branch(isa.OpBne, regCounter, regZero, head)

	exit := b.NewBlock()
	b.SetBlock(exit)
	b.Halt()
	return nil
}

// sampleBlockSize draws a basic-block size from the profile's
// distribution.
func (st *genState) sampleBlockSize() int {
	size := int(st.prof.BlockMean + st.prof.BlockStd*st.bbv.NormFloat64() + 0.5)
	if size < 2 {
		size = 2
	}
	if upper := int(st.prof.BlockMean * 3); size > upper && upper >= 2 {
		size = upper
	}
	return size
}

// pickClass selects the class of the next filler instruction, weighted by
// remaining budget. It accumulates the integer budgets directly instead of
// materializing a float64 weight vector for rng.Pick — every partial sum
// is an integer far below 2^53, so each float64 conversion is exact and
// the target comparisons (and therefore the drawn class sequence) are
// bit-identical to Pick over the converted weights. The caller passes the
// remaining filler total it already tracks (work[] entries never go
// negative, so that running count equals the sum of the positive budgets
// the weighted draw needs). This runs once per generated filler
// instruction, so skipping both the vector build and any summation pass
// is a measurable slice of generation time.
func (st *genState) pickClass(total int) isa.Class {
	if total <= 0 {
		return fillerClasses[0]
	}
	target := st.bbv.Float64() * float64(total)
	acc := 0
	for i, c := range fillerClasses {
		w := st.work[c]
		if w <= 0 {
			continue
		}
		acc += w
		if target < float64(acc) {
			return fillerClasses[i]
		}
	}
	return fillerClasses[len(fillerClasses)-1]
}

// emitDiamond writes a balanced if-diamond: a conditional branch over two
// arms with identical class multisets, so the dynamic instruction counts
// are independent of the branch direction.
func (st *genState) emitDiamond(ctx *emitCtx, kind diamondKind, totalFiller *int) {
	b := &st.b

	// Draw the arm's class multiset from the remaining budgets.
	armLen := st.params.ArmSize
	if armLen > *totalFiller {
		armLen = *totalFiller
	}
	armClasses := st.armClasses[:0]
	for i := 0; i < armLen; i++ {
		c := st.pickClass(*totalFiller)
		armClasses = append(armClasses, c)
		st.work[c]--
		*totalFiller--
	}
	st.armClasses = armClasses

	armA := b.NewBlock()
	armB := b.NewBlock()
	join := b.NewBlock()

	// Condition and branch, in the block the diamond interrupts.
	b.SetBlock(ctx.cur)
	switch kind {
	case diamondDataDep:
		// Condition on the most recently written pool register: it is
		// frequently a load result, so — as in real branchy code — the
		// branch resolves late and mispredictions are expensive.
		src := st.lastIntDst
		shiftReg := uint8(regShiftA)
		if st.branchRng.Intn(2) == 0 {
			shiftReg = regShiftB
		}
		b.Op3(isa.OpRor, regScratch, src, shiftReg)
		b.Op3(isa.OpAnd, regScratch, regScratch, regMask)
		b.Op3(isa.OpCmpLT, regScratch, regScratch, regThresh)
		b.Branch(isa.OpBne, regScratch, regZero, armB)
	case diamondStaticTaken:
		b.Branch(isa.OpBeq, regZero, regZero, armB)
	case diamondStaticNot:
		b.Branch(isa.OpBne, regZero, regZero, armB)
	}

	// Both arms carry the same class multiset (different concrete
	// instructions) and both end with an explicit jump, so either path
	// retires exactly len(armClasses)+1 instructions after the branch.
	b.SetBlock(armA)
	for _, c := range armClasses {
		st.emitFiller(c)
	}
	b.Jmp(join)

	b.SetBlock(armB)
	for _, c := range armClasses {
		st.emitFiller(c)
	}
	b.Jmp(join)

	b.SetBlock(join)
	ctx.cur = join
}
