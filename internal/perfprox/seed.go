// Package perfprox generates widgets: synthetic programs matching a
// perturbed performance profile, in the style of PerfProx proxies
// (Panda & John, ISPASS'17) as modified by the HashCore paper.
//
// The 256-bit hash seed is split exactly as the paper's Table I:
//
//	bits   0- 31  Integer ALU noise
//	bits  32- 63  Integer Multiply noise
//	bits  64- 95  Floating Point ALU noise
//	bits  96-127  Loads noise
//	bits 128-159  Stores noise
//	bits 160-191  Branch Behavior noise
//	bits 192-223  Basic Block Vector seed
//	bits 224-255  Memory seed
//
// The first five fields add *positive-only* noise to their class's dynamic
// instruction budget (paper §V: "HashCore only adds positive noise to the
// instruction type counts"), the branch field perturbs branch behaviour
// (bias and pattern selection) without changing the branch count — which is
// why widgets have proportionally fewer branches than the profile — and
// the last two fields seed the PRNGs that drive code structure and memory
// behaviour.
package perfprox

import "encoding/binary"

// SeedSize is the hash seed size in bytes (256 bits).
const SeedSize = 32

// Seed is a 256-bit hash seed (the output of the first hash gate).
type Seed [SeedSize]byte

// Fields is the Table I decomposition of a hash seed into eight 32-bit
// integers.
type Fields struct {
	IntALU uint32 // bits 0-31: integer ALU count noise
	IntMul uint32 // bits 32-63: integer multiply count noise
	FPALU  uint32 // bits 64-95: floating-point ALU count noise
	Loads  uint32 // bits 96-127: load count noise
	Stores uint32 // bits 128-159: store count noise
	Branch uint32 // bits 160-191: branch behaviour noise
	BBV    uint32 // bits 192-223: basic block vector PRNG seed
	Mem    uint32 // bits 224-255: memory PRNG seed
}

// Split decomposes a seed per Table I. Bit i of the seed is bit (i mod 32)
// of field i/32, with the seed read as eight big-endian 32-bit words.
func Split(seed Seed) Fields {
	w := func(i int) uint32 { return binary.BigEndian.Uint32(seed[i*4:]) }
	return Fields{
		IntALU: w(0),
		IntMul: w(1),
		FPALU:  w(2),
		Loads:  w(3),
		Stores: w(4),
		Branch: w(5),
		BBV:    w(6),
		Mem:    w(7),
	}
}

// Unit maps a 32-bit field to the unit interval [0, 1).
func Unit(field uint32) float64 {
	return float64(field) / (1 << 32)
}
