// Package randomxlite is a simplified RandomX-style PoW baseline for the
// paper's §VI-C discussion ("Alternatives to Inverted Benchmarking").
//
// Where HashCore's generator targets the execution profile of a reference
// workload, RandomX "instead target[s] explicit utilization of each
// computational structure": it draws instructions uniformly over the
// machine's functional classes with no workload model. This package
// reproduces that design point on the same ISA/VM substrate so the two
// generation philosophies can be compared on identical footing
// (BenchmarkAblation_RandomXLite and the hcbench randomx experiment).
package randomxlite

import (
	"fmt"

	"hashcore/internal/gate"
	"hashcore/internal/isa"
	"hashcore/internal/perfprox"
	"hashcore/internal/prog"
	"hashcore/internal/rng"
	"hashcore/internal/vm"
)

// Params configures the random-program generator.
type Params struct {
	// ScratchSize is the scratchpad size in bytes (power of two).
	// Default 2 MiB (RandomX uses a 2 MiB scratchpad per VM).
	ScratchSize int
	// ProgramSize is the number of instructions per loop iteration.
	// Default 256 (RandomX programs are 256 instructions).
	ProgramSize int
	// Iterations is the loop trip count. Default 512.
	Iterations int
}

func (p Params) withDefaults() Params {
	if p.ScratchSize == 0 {
		p.ScratchSize = 2 << 20
	}
	if p.ProgramSize == 0 {
		p.ProgramSize = 256
	}
	if p.Iterations == 0 {
		p.Iterations = 512
	}
	return p
}

// Generator builds uniform random programs from hash seeds.
type Generator struct {
	params Params
}

// NewGenerator validates params and returns a generator.
func NewGenerator(params Params) (*Generator, error) {
	p := params.withDefaults()
	if p.ScratchSize < prog.MinMemSize || p.ScratchSize > prog.MaxMemSize ||
		p.ScratchSize&(p.ScratchSize-1) != 0 {
		return nil, fmt.Errorf("randomxlite: scratch size %d invalid", p.ScratchSize)
	}
	if p.ProgramSize < 8 || p.ProgramSize > 1<<16 {
		return nil, fmt.Errorf("randomxlite: program size %d invalid", p.ProgramSize)
	}
	if p.Iterations < 1 || p.Iterations > 1<<20 {
		return nil, fmt.Errorf("randomxlite: iterations %d invalid", p.Iterations)
	}
	return &Generator{params: p}, nil
}

// classWeights gives every structural class equal footing, mirroring
// RandomX's explicit-utilization philosophy (frequencies are uniform
// across units rather than matched to any workload).
var classes = []isa.Class{
	isa.ClassIntALU, isa.ClassIntMul, isa.ClassFPALU,
	isa.ClassLoad, isa.ClassStore, isa.ClassVector,
}

// Generate builds the random program for a seed. All 256 bits feed one
// PRNG — unlike HashCore there is no Table I structure to the seed.
func (g *Generator) Generate(seed [32]byte) (*prog.Program, error) {
	sm := rng.NewSplitMix64(0)
	var mix uint64
	for i := 0; i < 4; i++ {
		word := uint64(0)
		for j := 0; j < 8; j++ {
			word = word<<8 | uint64(seed[i*8+j])
		}
		sm = rng.NewSplitMix64(word ^ mix)
		mix = sm.Next()
	}
	x := rng.NewXoshiro256(mix)

	b := prog.NewBuilder(g.params.ScratchSize, x.Next())
	b.NewBlock()
	b.MovI(15, int64(g.params.Iterations))
	b.MovI(14, 0)
	for i := 0; i < 8; i++ {
		b.MovI(uint8(i), int64(x.Next()))
	}
	for i := 0; i < 8; i++ {
		b.Op2(isa.OpFCvt, uint8(i), uint8(i))
	}
	for i := 0; i < 4; i++ {
		b.Op2(isa.OpVBcast, uint8(i), uint8(i))
	}

	loop := b.NewBlock()
	for i := 0; i < g.params.ProgramSize; i++ {
		g.emitUniform(b, x)
	}
	b.AddI(15, 15, -1)
	b.Branch(isa.OpBne, 15, 14, loop)

	exit := b.NewBlock()
	b.SetBlock(exit)
	b.Halt()
	return b.Build()
}

// emitUniform emits one instruction with the class drawn uniformly.
func (g *Generator) emitUniform(b *prog.Builder, x *rng.Xoshiro256) {
	pool := func() uint8 { return uint8(x.Intn(8)) }
	switch classes[x.Intn(len(classes))] {
	case isa.ClassIntALU:
		ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd, isa.OpOr, isa.OpShl, isa.OpShr, isa.OpRor}
		b.Op3(ops[x.Intn(len(ops))], pool(), pool(), pool())
	case isa.ClassIntMul:
		if x.Intn(2) == 0 {
			b.Op3(isa.OpMul, pool(), pool(), pool())
		} else {
			b.Op3(isa.OpMulH, pool(), pool(), pool())
		}
	case isa.ClassFPALU:
		ops := []isa.Opcode{isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv}
		b.Op3(ops[x.Intn(len(ops))], pool(), pool(), pool())
	case isa.ClassLoad:
		b.Load(pool(), pool(), int64(x.Intn(1<<16)))
	case isa.ClassStore:
		b.Store(pool(), pool(), int64(x.Intn(1<<16)))
	case isa.ClassVector:
		ops := []isa.Opcode{isa.OpVAdd, isa.OpVXor, isa.OpVMul}
		b.Op3(ops[x.Intn(len(ops))], uint8(x.Intn(8)), uint8(x.Intn(8)), uint8(x.Intn(8)))
	}
}

// Hasher is the RandomX-lite PoW function: H(x) = G(s || W(s)) with the
// uniform generator as W. It satisfies pow.Hasher.
type Hasher struct {
	gen  *Generator
	gate gate.Gate
	vp   vm.Params
}

// NewHasher builds the PoW function.
func NewHasher(params Params, g gate.Gate, vp vm.Params) (*Hasher, error) {
	gen, err := NewGenerator(params)
	if err != nil {
		return nil, err
	}
	if g == nil {
		g = gate.SHA256{}
	}
	return &Hasher{gen: gen, gate: g, vp: vp}, nil
}

// Hash computes the PoW digest of header.
func (h *Hasher) Hash(header []byte) ([32]byte, error) {
	s := h.gate.Sum(header)
	p, err := h.gen.Generate(s)
	if err != nil {
		return [32]byte{}, err
	}
	res, err := vm.Run(p, h.vp, nil)
	if err != nil {
		return [32]byte{}, err
	}
	buf := make([]byte, 0, len(s)+len(res.Output))
	buf = append(buf, s[:]...)
	buf = append(buf, res.Output...)
	return h.gate.Sum(buf), nil
}

// Name returns "randomx-lite".
func (h *Hasher) Name() string { return "randomx-lite" }

// Seed re-exports the seed type used by Generate for convenience in the
// experiment harness.
type Seed = perfprox.Seed
