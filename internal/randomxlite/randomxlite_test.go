package randomxlite

import (
	"bytes"
	"math"
	"testing"

	"hashcore/internal/isa"
	"hashcore/internal/profile"
	"hashcore/internal/vm"
)

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Params{ScratchSize: 1000}); err == nil {
		t.Error("non-pow2 scratch accepted")
	}
	if _, err := NewGenerator(Params{ProgramSize: 1}); err == nil {
		t.Error("tiny program accepted")
	}
	if _, err := NewGenerator(Params{Iterations: -1}); err == nil {
		t.Error("negative iterations accepted")
	}
	if _, err := NewGenerator(Params{}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	g, err := NewGenerator(Params{Iterations: 16})
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 [32]byte
	s2[31] = 1
	a, err := g.Generate(s1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(s1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Generate(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Encode(), b.Encode()) {
		t.Fatal("same seed gave different programs")
	}
	if bytes.Equal(a.Encode(), c.Encode()) {
		t.Fatal("different seeds gave identical programs")
	}
}

// TestUniformMix: the defining property vs HashCore — the class mix is
// near-uniform over the six structural classes rather than matched to a
// workload.
func TestUniformMix(t *testing.T) {
	g, err := NewGenerator(Params{Iterations: 64})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Generate([32]byte{7})
	if err != nil {
		t.Fatal(err)
	}
	r, err := profile.MeasureFunctional("rxl", p, vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range classes {
		f := r.Mix[class]
		if math.Abs(f-1.0/6) > 0.08 {
			t.Errorf("class %s fraction %.3f deviates from uniform 1/6", class, f)
		}
	}
	if r.Mix[isa.ClassBranch] > 0.05 {
		t.Errorf("branch fraction %.3f unexpectedly high", r.Mix[isa.ClassBranch])
	}
}

func TestHasher(t *testing.T) {
	h, err := NewHasher(Params{Iterations: 16, ProgramSize: 64}, nil, vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Hash([]byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Hash([]byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("hasher nondeterministic")
	}
	c, err := h.Hash([]byte("headerX"))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct headers collided")
	}
	if h.Name() != "randomx-lite" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestProgramTerminates(t *testing.T) {
	g, err := NewGenerator(Params{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Generate([32]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.Run(p, vm.Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("random program truncated")
	}
	want := uint64(512*258) + 20 // iterations * (program+2 bookkeeping) + prologue-ish
	if res.Retired < want/2 || res.Retired > want*2 {
		t.Errorf("retired %d, expected near %d", res.Retired, want)
	}
}
