package telemetry

import (
	"bufio"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestJournalBasic(t *testing.T) {
	j := NewJournal(8)
	j.Emit("tip", map[string]any{"height": 1})
	j.Emit("ban", map[string]any{"host": "10.0.0.1"})
	if j.Len() != 2 || j.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d", j.Len(), j.Dropped())
	}
	evs := j.Events(0)
	if len(evs) != 2 || evs[0].Type != "tip" || evs[1].Type != "ban" {
		t.Fatalf("Events = %+v", evs)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seqs = %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if got := j.Events(1); len(got) != 1 || got[0].Type != "ban" {
		t.Fatalf("Events(1) = %+v", got)
	}
}

// Overflow must drop the oldest entries, keep sequence numbers
// contiguous on the survivors, and count every overwrite.
func TestJournalOverflowDropsOldest(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Emit("e", map[string]any{"i": i})
	}
	if j.Len() != 4 {
		t.Fatalf("Len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
	evs := j.Events(0)
	for k, ev := range evs {
		wantSeq := uint64(6 + k) // newest 4 of 10: seqs 6..9, oldest first
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d (%+v)", k, ev.Seq, wantSeq, evs)
		}
		if ev.Fields["i"] != 6+k {
			t.Fatalf("event %d fields = %v", k, ev.Fields)
		}
	}
}

// Concurrent emitters must be safe (run under -race in CI) and account
// for every event either retained or dropped.
func TestJournalConcurrentWriters(t *testing.T) {
	const writers, each = 8, 500
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Emit("e", map[string]any{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	total := uint64(j.Len()) + j.Dropped()
	if total != writers*each {
		t.Fatalf("retained+dropped = %d, want %d", total, writers*each)
	}
	// Seqs must be strictly increasing, oldest first, with the newest
	// event carrying the final sequence number.
	evs := j.Events(0)
	for k := 1; k < len(evs); k++ {
		if evs[k].Seq != evs[k-1].Seq+1 {
			t.Fatalf("seq gap between %d and %d", evs[k-1].Seq, evs[k].Seq)
		}
	}
	if last := evs[len(evs)-1].Seq; last != writers*each-1 {
		t.Fatalf("last seq = %d, want %d", last, writers*each-1)
	}
}

func TestJournalNDJSON(t *testing.T) {
	j := NewJournal(4)
	j.Emit("tip", map[string]any{"height": 7})
	j.Emit("reorg", map[string]any{"depth": 2})
	var b strings.Builder
	if err := j.WriteNDJSON(&b, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var types []string
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
	}
	if len(types) != 2 || types[0] != "tip" || types[1] != "reorg" {
		t.Fatalf("types = %v", types)
	}
}
