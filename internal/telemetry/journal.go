package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured journal entry: a typed fact about the node's
// life (tip move, reorg, ban, disconnect, store halt) with a small bag
// of fields. Seq is assigned by the journal and strictly increases, so
// a reader polling /events can detect both new entries and gaps left by
// overflow.
type Event struct {
	Seq    uint64         `json:"seq"`
	Time   time.Time      `json:"time"`
	Type   string         `json:"type"`
	Fields map[string]any `json:"fields,omitempty"`
}

// Journal is a bounded ring buffer of events. When full, the oldest
// entry is overwritten (drop-oldest) and the dropped counter increments;
// emitters never block and never fail. A nil *Journal discards
// everything, so libraries can carry one unconditionally.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // seq of the next event to be written
	dropped uint64
}

// NewJournal returns a journal holding at most capacity events
// (minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, 0, capacity)}
}

// Emit appends an event. fields may be nil; it is stored as-is (the
// caller must not mutate it afterwards). Safe for concurrent use.
func (j *Journal) Emit(typ string, fields map[string]any) {
	if j == nil {
		return
	}
	j.mu.Lock()
	ev := Event{Seq: j.next, Time: time.Now().UTC(), Type: typ, Fields: fields}
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, ev)
	} else {
		// Full: overwrite the oldest slot. The ring's physical index of
		// the oldest event is next % cap once we have wrapped.
		j.buf[j.next%uint64(cap(j.buf))] = ev
		j.dropped++
	}
	j.next++
	j.mu.Unlock()
}

// Dropped returns how many events have been overwritten.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Len returns how many events are currently retained.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}

// Events returns the retained events, oldest first. n > 0 limits the
// result to the newest n.
func (j *Journal) Events(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.buf))
	if len(j.buf) < cap(j.buf) {
		out = append(out, j.buf...)
	} else {
		// Wrapped: oldest lives at next % cap.
		start := int(j.next % uint64(cap(j.buf)))
		out = append(out, j.buf[start:]...)
		out = append(out, j.buf[:start]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// WriteNDJSON streams the retained events (oldest first, newest n when
// n > 0) as newline-delimited JSON — the /events wire format.
func (j *Journal) WriteNDJSON(w io.Writer, n int) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range j.Events(n) {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
