package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"
)

// NewMux builds the debug plane every daemon mounts behind
// -metrics-addr:
//
//	/metrics  — Prometheus text exposition of reg
//	/events   — the journal as NDJSON (?n=K limits to the newest K)
//	/healthz  — 200 "ok" while healthz() returns nil, else 503 + error
//	/debug/pprof/* — the standard runtime profiles
//
// reg, journal, and healthz may each be nil: a nil registry exposes
// nothing, a nil journal streams nothing, a nil healthz is always
// healthy.
func NewMux(reg *Registry, journal *Journal, healthz func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if journal != nil {
			_ = journal.WriteNDJSON(w, n)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	// net/http/pprof registers on http.DefaultServeMux at init; mount
	// its handlers here explicitly so the debug plane works on a private
	// mux (and nothing leaks onto the default one by accident).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// RegisterProcessMetrics adds the runtime gauges every daemon wants —
// goroutine count, heap bytes, GC totals, uptime — to reg.
func RegisterProcessMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	start := time.Now()
	reg.GaugeFunc("process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("process_heap_alloc_bytes",
		"Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.CounterFunc("process_gc_total",
		"Completed GC cycles since process start.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
	reg.GaugeFunc("process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(start).Seconds() })
}

// Server is a running debug HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug plane on addr (e.g. "127.0.0.1:6060") and
// returns immediately; process metrics are registered on reg as a side
// effect. Close shuts it down.
func Serve(addr string, reg *Registry, journal *Journal, healthz func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	RegisterProcessMetrics(reg)
	srv := &http.Server{
		Handler:           NewMux(reg, journal, healthz),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
