package telemetry

import (
	"math"
	"strings"
	"testing"
)

// The whole point of the package: recording must not allocate, so the
// hashing and verification hot loops can be instrumented for free.
func TestRecordPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_counter_total", "test")
	g := reg.Gauge("t_gauge", "test")
	h := reg.Histogram("t_hist_seconds", "test", HashLatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(-1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0021) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

// A nil registry (telemetry disabled) must hand out nil instruments
// whose every method is a safe no-op — that is the contract that lets
// libraries skip conditional plumbing.
func TestNilRegistryAndInstruments(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", SizeBuckets)
	reg.GaugeFunc("y", "", func() float64 { return 1 })
	reg.CounterFunc("z_total", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if h.Buckets() != nil {
		t.Fatal("nil histogram buckets must be nil")
	}
	if got := reg.Gather(); got != nil {
		t.Fatalf("nil registry Gather = %v", got)
	}
	if _, ok := reg.Value("x_total"); ok {
		t.Fatal("nil registry Value must report !ok")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var j *Journal
	j.Emit("tip", nil) // must not panic
	if j.Len() != 0 || j.Dropped() != 0 || j.Events(0) != nil {
		t.Fatal("nil journal must read empty")
	}
}

// Get-or-create must be idempotent per (name, labels) and distinct
// across label sets.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("shares_total", "", Label{"class", "accepted"})
	b := reg.Counter("shares_total", "", Label{"class", "accepted"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("shares_total", "", Label{"class", "stale"})
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	a.Add(2)
	c.Inc()
	total, ok := reg.Value("shares_total")
	if !ok || total != 3 {
		t.Fatalf("Value = %v, %v; want 3, true", total, ok)
	}
	// Kind mismatch must not corrupt the registry: the caller gets a
	// working detached instrument and the original survives.
	g := reg.Gauge("shares_total", "", Label{"class", "accepted"})
	g.Set(99)
	if a.Value() != 2 {
		t.Fatal("kind mismatch corrupted the original counter")
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("Sum = %g", h.Sum())
	}
	bs := h.Buckets()
	wantLe := []float64{1, 2, 4, math.Inf(1)}
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range bs {
		if b.Le != wantLe[i] || b.Count != wantCum[i] {
			t.Fatalf("bucket %d = {%g %d}, want {%g %d}", i, b.Le, b.Count, wantLe[i], wantCum[i])
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hc_frames_total", "Frames.", Label{"dir", "in"}).Add(7)
	reg.Gauge("hc_tip_height", "Tip height.").Set(42)
	reg.GaugeFunc("hc_peers", "Peers.", func() float64 { return 3 })
	h := reg.Histogram("hc_hash_seconds", "Hash latency.", []float64{0.001, 0.01})
	h.Observe(0.002)
	h.Observe(0.0005)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP hc_frames_total Frames.",
		"# TYPE hc_frames_total counter",
		`hc_frames_total{dir="in"} 7`,
		"# TYPE hc_tip_height gauge",
		"hc_tip_height 42",
		"# TYPE hc_peers gauge",
		"hc_peers 3",
		"# TYPE hc_hash_seconds histogram",
		`hc_hash_seconds_bucket{le="0.001"} 1`,
		`hc_hash_seconds_bucket{le="0.01"} 2`,
		`hc_hash_seconds_bucket{le="+Inf"} 2`,
		"hc_hash_seconds_sum 0.0025",
		"hc_hash_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// Histogram series must merge the instrument's own labels with le.
func TestPrometheusHistogramWithLabels(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("hc_lat_seconds", "", []float64{1}, Label{"stage", "verify"})
	h.Observe(0.5)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`hc_lat_seconds_bucket{stage="verify",le="1"} 1`,
		`hc_lat_seconds_bucket{stage="verify",le="+Inf"} 1`,
		`hc_lat_seconds_sum{stage="verify"} 0.5`,
		`hc_lat_seconds_count{stage="verify"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelsRenderedSorted(t *testing.T) {
	a := renderLabels([]Label{{"b", "2"}, {"a", "1"}})
	b := renderLabels([]Label{{"a", "1"}, {"b", "2"}})
	if a != b || a != `{a="1",b="2"}` {
		t.Fatalf("renderLabels not canonical: %q vs %q", a, b)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", got)
		}
	}
	// The shared layouts must be valid histogram inputs (ascending).
	for _, bs := range [][]float64{HashLatencyBuckets, IOLatencyBuckets, QueueLatencyBuckets, SizeBuckets} {
		NewHistogram(bs) // panics if not ascending
	}
}

func TestGatherSnapshotsEverything(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Inc()
	reg.Gauge("b", "").Set(2)
	reg.Histogram("c_seconds", "", []float64{1}).Observe(0.5)
	samples := reg.Gather()
	if len(samples) != 3 {
		t.Fatalf("Gather len = %d", len(samples))
	}
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["a_total"] != 1 || byName["b"] != 2 || byName["c_seconds"] != 1 {
		t.Fatalf("Gather = %+v", byName)
	}
}
