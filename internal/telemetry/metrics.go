// Package telemetry is the repository's dependency-free observability
// layer: a process-wide metrics registry (atomic counters, gauges and
// fixed-bucket histograms whose record path allocates nothing — safe to
// call from the hashing and verification hot loops), Prometheus
// text-format exposition, a bounded structured event journal, and the
// debug HTTP plane (/metrics, /events, /healthz, pprof) every daemon
// mounts behind -metrics-addr.
//
// Design rules:
//
//   - The record path (Counter.Add, Gauge.Set, Histogram.Observe) is a
//     handful of atomic operations, zero allocations, no locks. The
//     AllocsPerRun tests and the hcbench telemetry target lock this in.
//   - Instruments are resolved once, at construction, by get-or-create
//     against a Registry; labels are rendered then, never on record.
//   - Every instrument method is nil-receiver safe, so a subsystem built
//     with a nil *Registry is simply uninstrumented — no conditional
//     plumbing at call sites, one predictable branch per record.
//   - Registries are values, not global state: libraries take one in
//     their config, daemons pass Default(), tests and the simnet lab
//     mint one per node with NewRegistry.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter is a no-op (the disabled-telemetry path).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready; a
// nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds in ascending order with an implicit +Inf bucket appended; the
// record path is one linear scan plus three atomic adds and allocates
// nothing. A nil Histogram is a no-op.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1, last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a standalone histogram (hcbench uses one to mirror
// the runtime bucket layout without a registry). Buckets must be
// ascending; they are copied.
func NewHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not ascending at %d: %v", i, buckets))
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the cumulative per-bucket counts paired with their
// upper bounds (the final entry is the +Inf bucket, equal to Count).
func (h *Histogram) Buckets() []BucketCount {
	if h == nil {
		return nil
	}
	out := make([]BucketCount, len(h.upper)+1)
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.upper) {
			le = h.upper[i]
		}
		out[i] = BucketCount{Le: le, Count: cum}
	}
	return out
}

// BucketCount is one cumulative histogram bucket: observations <= Le.
type BucketCount struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// ExpBuckets returns n ascending bucket bounds starting at start and
// multiplying by factor — the standard layout for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Shared bucket layouts. HashLatencyBuckets is the contract between the
// runtime hash-latency histograms and hcbench's BENCH_vm.json
// latency_buckets field: both use exactly this layout so offline and
// live measurements are comparable bucket-for-bucket.
var (
	// HashLatencyBuckets spans 100µs..3.3s ×2 (hashes are ~2ms today).
	HashLatencyBuckets = ExpBuckets(100e-6, 2, 16)
	// IOLatencyBuckets spans 10µs..5.2s ×4 (fsync, appends).
	IOLatencyBuckets = ExpBuckets(10e-6, 4, 10)
	// QueueLatencyBuckets spans 1µs..1s ×4 (queue waits, fan-out).
	QueueLatencyBuckets = ExpBuckets(1e-6, 4, 10)
	// SizeBuckets spans 1..4096 ×2 (batch sizes, depths).
	SizeBuckets = ExpBuckets(1, 2, 13)
)

// Label is one metric dimension, rendered into the instrument's identity
// at construction time (never on the record path).
type Label struct {
	Key, Value string
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) prometheus() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// entry is one registered instrument.
type entry struct {
	name   string
	labels string // rendered {k="v",...} or ""
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// value flattens the entry to one float (histograms report their count).
func (e *entry) value() float64 {
	switch e.kind {
	case kindCounter:
		return float64(e.counter.Value())
	case kindGauge:
		return float64(e.gauge.Value())
	case kindHistogram:
		return float64(e.hist.Count())
	default:
		return e.fn()
	}
}

// Registry is a set of named instruments. Get-or-create constructors are
// idempotent: asking twice for the same (name, labels) returns the same
// instrument, so layers can resolve their instruments independently.
// All methods are safe for concurrent use, and every method on a nil
// *Registry returns a nil (no-op) instrument — a nil registry IS the
// disabled-telemetry configuration.
type Registry struct {
	mu      sync.RWMutex
	byKey   map[string]*entry
	ordered []*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

// defaultRegistry is the process-wide registry the daemons share.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// renderLabels builds the canonical {k="v",...} form, sorted by key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the entry for (name, labels). make runs under
// the write lock only on first creation. A name registered twice with
// different kinds returns a detached instrument of the requested kind
// (misconfiguration must not corrupt the exposition, and the caller's
// records still have somewhere to go).
func (r *Registry) lookup(name, labels, help string, kind metricKind, make func(*entry)) *entry {
	key := name + "\xff" + labels
	r.mu.RLock()
	e, ok := r.byKey[key]
	r.mu.RUnlock()
	if ok && e.kind == kind {
		return e
	}
	if ok {
		e = &entry{name: name, labels: labels, help: help, kind: kind}
		make(e)
		return e
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[key]; ok {
		if e.kind == kind {
			return e
		}
		det := &entry{name: name, labels: labels, help: help, kind: kind}
		make(det)
		return det
	}
	e = &entry{name: name, labels: labels, help: help, kind: kind}
	make(e)
	r.byKey[key] = e
	r.ordered = append(r.ordered, e)
	return e
}

// Counter returns the counter registered under name+labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, renderLabels(labels), help, kindCounter, func(e *entry) {
		e.counter = &Counter{}
	})
	return e.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, renderLabels(labels), help, kindGauge, func(e *entry) {
		e.gauge = &Gauge{}
	})
	return e.gauge
}

// Histogram returns the histogram registered under name+labels with the
// given bucket layout, creating it on first use (an existing histogram
// keeps its original buckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, renderLabels(labels), help, kindHistogram, func(e *entry) {
		e.hist = NewHistogram(buckets)
	})
	return e.hist
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the right shape for values another layer already owns (tip
// height, peer count, queue depth). Re-registering the same name+labels
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.lookup(name, renderLabels(labels), help, kindGaugeFunc, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// CounterFunc is GaugeFunc with counter semantics (fn must be
// monotonic) — used to expose externally accumulated totals such as the
// wire layer's byte tallies.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.lookup(name, renderLabels(labels), help, kindCounterFunc, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Sample is one flattened metric value (histograms appear as their
// observation count under the bare name).
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Gather snapshots every registered instrument. Entries appear in
// registration order; the lab's cluster-wide snapshot and tests consume
// this.
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	entries := append([]*entry(nil), r.ordered...)
	r.mu.RUnlock()
	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		out = append(out, Sample{Name: e.name, Labels: e.labels, Value: e.value()})
	}
	return out
}

// Value sums every instrument registered under name across its label
// sets (histograms contribute their observation count). ok reports
// whether the name is registered at all.
func (r *Registry) Value(name string) (total float64, ok bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	entries := append([]*entry(nil), r.ordered...)
	r.mu.RUnlock()
	for _, e := range entries {
		if e.name == name {
			total += e.value()
			ok = true
		}
	}
	return total, ok
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, grouped by metric name with one HELP/TYPE header each.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	entries := append([]*entry(nil), r.ordered...)
	r.mu.RUnlock()
	// Stable output: sort by name (registration order within a name).
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			if e.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", e.name, e.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind.prometheus())
			lastName = e.name
		}
		switch e.kind {
		case kindHistogram:
			writeHistogram(&b, e)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", e.name, e.labels, formatValue(e.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram's _bucket/_sum/_count series,
// merging the entry's own labels with the le label.
func writeHistogram(b *strings.Builder, e *entry) {
	base := strings.TrimSuffix(strings.TrimPrefix(e.labels, "{"), "}")
	for _, bc := range e.hist.Buckets() {
		le := "+Inf"
		if !math.IsInf(bc.Le, 1) {
			le = formatValue(bc.Le)
		}
		if base != "" {
			fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", e.name, base, le, bc.Count)
		} else {
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", e.name, le, bc.Count)
		}
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", e.name, e.labels, formatValue(e.hist.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", e.name, e.labels, e.hist.Count())
}

// formatValue renders a float the way Prometheus expects: integers
// without an exponent, everything else in shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
