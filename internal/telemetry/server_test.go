package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestPlane(t *testing.T, healthz func() error) (*Registry, *Journal, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	j := NewJournal(16)
	srv := httptest.NewServer(NewMux(reg, j, healthz))
	t.Cleanup(srv.Close)
	return reg, j, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	reg, _, srv := newTestPlane(t, nil)
	reg.Counter("hc_things_total", "Things.").Add(5)
	code, body := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "hc_things_total 5") {
		t.Fatalf("missing metric in:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE hc_things_total counter") {
		t.Fatalf("missing TYPE line in:\n%s", body)
	}
}

func TestEventsEndpoint(t *testing.T) {
	_, j, srv := newTestPlane(t, nil)
	j.Emit("tip", map[string]any{"height": 1})
	j.Emit("ban", map[string]any{"host": "h"})
	j.Emit("tip", map[string]any{"height": 2})

	code, body := get(t, srv.URL+"/events")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	count := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		count++
	}
	if count != 3 {
		t.Fatalf("got %d events", count)
	}

	code, body = get(t, srv.URL+"/events?n=1")
	if code != 200 || strings.Count(body, "\n") != 1 {
		t.Fatalf("?n=1: status %d body %q", code, body)
	}
	var last Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "tip" || last.Seq != 2 {
		t.Fatalf("newest = %+v", last)
	}

	if code, _ := get(t, srv.URL+"/events?n=bogus"); code != 400 {
		t.Fatalf("bad n: status %d", code)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	fail := errors.New("store halted: disk full")
	var sick bool
	_, _, srv := newTestPlane(t, func() error {
		if sick {
			return fail
		}
		return nil
	})
	if code, body := get(t, srv.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthy: %d %q", code, body)
	}
	sick = true
	if code, body := get(t, srv.URL+"/healthz"); code != 503 || !strings.Contains(body, "disk full") {
		t.Fatalf("sick: %d %q", code, body)
	}
}

func TestPprofMounted(t *testing.T) {
	_, _, srv := newTestPlane(t, nil)
	code, body := get(t, srv.URL+"/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}

func TestServeLifecycle(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, body := get(t, "http://"+s.Addr()+"/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	// Serve registers the process gauges as a side effect.
	if !strings.Contains(body, "process_goroutines") || !strings.Contains(body, "process_uptime_seconds") {
		t.Fatalf("process metrics missing in:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
