package selection

import (
	"testing"

	"hashcore/internal/isa"
	"hashcore/internal/perfprox"
	"hashcore/internal/profile"
	"hashcore/internal/vm"
)

func tinyProfile() *profile.Profile {
	return &profile.Profile{
		Name: "tiny",
		Mix: map[isa.Class]float64{
			isa.ClassIntALU: 0.6,
			isa.ClassIntMul: 0.05,
			isa.ClassFPALU:  0.05,
			isa.ClassLoad:   0.1,
			isa.ClassStore:  0.05,
			isa.ClassBranch: 0.15,
		},
		BranchTaken: 0.6, BranchDataDep: 0.3, BranchBias: 0.5,
		MemSequential: 0.5, MemStrided: 0.2, MemRandom: 0.2, MemPointerChase: 0.1,
		WorkingSet: 4 << 10, BlockMean: 5, BlockStd: 2, DepDist: 3,
		TargetDynamic: 2000,
	}
}

func newPool(t testing.TB, size int) *Pool {
	t.Helper()
	p, err := NewPool(tinyProfile(), perfprox.Params{}, size, 42, nil, vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolConstruction(t *testing.T) {
	p := newPool(t, 8)
	if p.Size() != 8 {
		t.Errorf("Size = %d", p.Size())
	}
	if p.StorageBytes() == 0 {
		t.Error("no storage accounted")
	}
	if p.Name() != "hashcore-select" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestPoolDeterministicConstruction(t *testing.T) {
	a := newPool(t, 4)
	b := newPool(t, 4)
	if a.StorageBytes() != b.StorageBytes() {
		t.Fatal("same master seed built different pools")
	}
}

func TestPoolSizeValidation(t *testing.T) {
	if _, err := NewPool(tinyProfile(), perfprox.Params{}, 0, 1, nil, vm.Params{}); err == nil {
		t.Error("zero pool accepted")
	}
	bad := tinyProfile()
	bad.TargetDynamic = 1
	if _, err := NewPool(bad, perfprox.Params{}, 2, 1, nil, vm.Params{}); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestSelectionSpreadsOverPool(t *testing.T) {
	p := newPool(t, 4)
	counts := make([]int, 4)
	for i := 0; i < 64; i++ {
		var seed perfprox.Seed
		seed[0] = byte(i)
		seed[3] = byte(i * 7)
		counts[p.Select(seed)]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("pool entry %d never selected", i)
		}
	}
}

func TestHashDeterministicAndSeedSensitive(t *testing.T) {
	p := newPool(t, 4)
	a, err := p.Hash([]byte("block"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Hash([]byte("block"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("selection hash nondeterministic")
	}
	c, err := p.Hash([]byte("block2"))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct headers collided")
	}
}

// TestSeedDependentExecution: two headers that select the same widget must
// still produce different digests, because the seed reinitializes the
// widget's memory (otherwise pool outputs would be precomputable).
func TestSeedDependentExecution(t *testing.T) {
	p := newPool(t, 1) // every seed selects widget 0
	a, err := p.Hash([]byte("h1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Hash([]byte("h2"))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("same widget, different seeds produced identical digests")
	}
}
