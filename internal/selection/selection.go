// Package selection implements the paper's §VI-A alternative to runtime
// widget generation: a fixed pool of pre-generated widgets from which each
// hash seed selects one.
//
// The paper weighs the two designs: selection saves the generation cost on
// every hash ("widget selection is far less computationally intensive than
// widget generation") at the price of storage ("the widget pool ... could
// consist of several gigabytes worth of code") and ASIC exposure ("custom
// ASICs could be constructed for some subset of the widget pool"). To keep
// a selected widget's output seed-dependent (otherwise all pool outputs
// could be precomputed once), the seed overrides the widget's
// scratch-memory content seed before execution.
package selection

import (
	"encoding/binary"
	"fmt"

	"hashcore/internal/gate"
	"hashcore/internal/perfprox"
	"hashcore/internal/profile"
	"hashcore/internal/prog"
	"hashcore/internal/rng"
	"hashcore/internal/vm"
)

// Pool is a fixed widget pool with seed-driven selection. It is immutable
// after construction and safe for concurrent use.
type Pool struct {
	widgets []*prog.Program
	gate    gate.Gate
	vp      vm.Params
	storage int
}

// NewPool pre-generates size widgets for the profile from a master seed.
// The per-widget seeds are derived deterministically, so two pools built
// with the same arguments are identical.
func NewPool(prof *profile.Profile, params perfprox.Params, size int, masterSeed uint64, g gate.Gate, vp vm.Params) (*Pool, error) {
	if size < 1 || size > 1<<20 {
		return nil, fmt.Errorf("selection: pool size %d out of range", size)
	}
	gen, err := perfprox.NewGenerator(prof, params)
	if err != nil {
		return nil, fmt.Errorf("selection: %w", err)
	}
	if g == nil {
		g = gate.SHA256{}
	}
	sm := rng.NewSplitMix64(masterSeed)
	p := &Pool{gate: g, vp: vp, widgets: make([]*prog.Program, 0, size)}
	for i := 0; i < size; i++ {
		var seed perfprox.Seed
		for off := 0; off < len(seed); off += 8 {
			binary.BigEndian.PutUint64(seed[off:], sm.Next())
		}
		w, err := gen.Generate(seed)
		if err != nil {
			return nil, fmt.Errorf("selection: generating pool widget %d: %w", i, err)
		}
		p.storage += len(w.Encode())
		p.widgets = append(p.widgets, w)
	}
	return p, nil
}

// Size returns the number of widgets in the pool.
func (p *Pool) Size() int { return len(p.widgets) }

// StorageBytes returns the total encoded size of the pool — the storage
// cost axis of the paper's generation-vs-selection trade-off.
func (p *Pool) StorageBytes() int { return p.storage }

// Select returns the pool index chosen by a hash seed.
func (p *Pool) Select(seed perfprox.Seed) int {
	return int(binary.BigEndian.Uint32(seed[0:4]) % uint32(len(p.widgets)))
}

// Instance returns the widget a seed selects, memory-reseeded exactly as
// Hash would execute it. Exposed so the experiment harness can time
// selection and execution separately.
func (p *Pool) Instance(seed perfprox.Seed) *prog.Program {
	idx := p.Select(seed)
	// Copy the widget with a seed-dependent memory initialization so the
	// output cannot be precomputed per pool entry.
	w := *p.widgets[idx]
	w.MemSeed = binary.LittleEndian.Uint64(seed[8:16])
	return &w
}

// Hash computes the selection-variant PoW: s = G(x) picks a widget, the
// widget runs with its memory reseeded from s, and the digest is
// G(s || output). Satisfies pow.Hasher.
func (p *Pool) Hash(header []byte) ([32]byte, error) {
	s := p.gate.Sum(header)
	w := p.Instance(perfprox.Seed(s))
	res, err := vm.Run(w, p.vp, nil)
	if err != nil {
		return [32]byte{}, err
	}
	buf := make([]byte, 0, len(s)+len(res.Output))
	buf = append(buf, s[:]...)
	buf = append(buf, res.Output...)
	return p.gate.Sum(buf), nil
}

// Name returns "hashcore-select".
func (p *Pool) Name() string { return "hashcore-select" }
