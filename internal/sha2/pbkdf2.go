package sha2

import "encoding/binary"

// PBKDF2 derives a key of dkLen bytes from password and salt using c
// iterations of HMAC-SHA256, per RFC 2898 / RFC 8018.
// It panics if c < 1 or dkLen < 1; both are programmer errors.
func PBKDF2(password, salt []byte, c, dkLen int) []byte {
	if c < 1 {
		panic("sha2: PBKDF2 iteration count must be >= 1")
	}
	if dkLen < 1 {
		panic("sha2: PBKDF2 derived key length must be >= 1")
	}

	mac := NewHMAC(password)
	numBlocks := (dkLen + Size - 1) / Size
	dk := make([]byte, 0, numBlocks*Size)

	buf := make([]byte, len(salt)+4)
	copy(buf, salt)
	for block := 1; block <= numBlocks; block++ {
		binary.BigEndian.PutUint32(buf[len(salt):], uint32(block))
		u := mac.Sum(buf)
		t := u
		for i := 1; i < c; i++ {
			u = mac.Sum(u[:])
			for j := range t {
				t[j] ^= u[j]
			}
		}
		dk = append(dk, t[:]...)
	}
	return dk[:dkLen]
}
