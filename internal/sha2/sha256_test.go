package sha2

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func TestDigestFIPSVectors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{
			"two-block",
			"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Digest([]byte(tt.in))
			if hex.EncodeToString(got[:]) != tt.want {
				t.Errorf("Digest(%q) = %x, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestDigestMillionA(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 1M-byte vector in -short mode")
	}
	h := New()
	chunk := bytes.Repeat([]byte{'a'}, 1000)
	for i := 0; i < 1000; i++ {
		h.Write(chunk)
	}
	got := h.Sum256()
	const want = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("Digest(1M x 'a') = %x, want %s", got, want)
	}
}

// TestDigestMatchesStdlib is the primary cross-check: our implementation
// must agree with crypto/sha256 on arbitrary inputs, including all lengths
// around block boundaries.
func TestDigestMatchesStdlib(t *testing.T) {
	for n := 0; n <= 3*BlockSize; n++ {
		in := make([]byte, n)
		for i := range in {
			in[i] = byte(i * 7)
		}
		got := Digest(in)
		want := sha256.Sum256(in)
		if got != want {
			t.Fatalf("length %d: Digest = %x, stdlib = %x", n, got, want)
		}
	}
}

func TestDigestMatchesStdlibQuick(t *testing.T) {
	f := func(in []byte) bool {
		got := Digest(in)
		return got == sha256.Sum256(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteChunking verifies that splitting the input across Write calls in
// every possible way yields the same digest as a single Write.
func TestWriteChunking(t *testing.T) {
	msg := make([]byte, 2*BlockSize+17)
	for i := range msg {
		msg[i] = byte(i)
	}
	want := Digest(msg)
	for split := 0; split <= len(msg); split++ {
		h := New()
		h.Write(msg[:split])
		h.Write(msg[split:])
		if got := h.Sum256(); got != want {
			t.Fatalf("split at %d: digest mismatch", split)
		}
	}
}

func TestSumIsNonDestructive(t *testing.T) {
	h := New()
	h.Write([]byte("partial "))
	first := h.Sum256()
	second := h.Sum256()
	if first != second {
		t.Fatal("two Sum256 calls without intervening writes disagree")
	}
	h.Write([]byte("message"))
	full := h.Sum256()
	want := Digest([]byte("partial message"))
	if full != want {
		t.Fatalf("digest after continued writes = %x, want %x", full, want)
	}
}

func TestReset(t *testing.T) {
	h := New()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum256()
	want := Digest([]byte("abc"))
	if got != want {
		t.Fatalf("digest after Reset = %x, want %x", got, want)
	}
}

func TestSumAppends(t *testing.T) {
	h := New()
	h.Write([]byte("abc"))
	prefix := []byte{1, 2, 3}
	out := h.Sum(prefix)
	if !bytes.Equal(out[:3], prefix) {
		t.Fatal("Sum did not preserve prefix")
	}
	want := Digest([]byte("abc"))
	if !bytes.Equal(out[3:], want[:]) {
		t.Fatal("Sum appended wrong digest")
	}
}

func TestHashInterfaceSizes(t *testing.T) {
	h := New()
	if h.Size() != 32 {
		t.Errorf("Size() = %d, want 32", h.Size())
	}
	if h.BlockSize() != 64 {
		t.Errorf("BlockSize() = %d, want 64", h.BlockSize())
	}
}

// RFC 4231 HMAC-SHA256 test vectors (cases 1, 2 and 6).
func TestHMACRFC4231(t *testing.T) {
	tests := []struct {
		name      string
		key, data []byte
		want      string
	}{
		{
			"case1",
			bytes.Repeat([]byte{0x0b}, 20),
			[]byte("Hi There"),
			"b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
		},
		{
			"case2",
			[]byte("Jefe"),
			[]byte("what do ya want for nothing?"),
			"5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
		},
		{
			"case6-long-key",
			bytes.Repeat([]byte{0xaa}, 131),
			[]byte("Test Using Larger Than Block-Size Key - Hash Key First"),
			"60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := HMAC(tt.key, tt.data)
			if hex.EncodeToString(got[:]) != tt.want {
				t.Errorf("HMAC = %x, want %s", got, tt.want)
			}
		})
	}
}

func TestHMACMatchesStdlibQuick(t *testing.T) {
	f := func(key, msg []byte) bool {
		got := HMAC(key, msg)
		m := hmac.New(sha256.New, key)
		m.Write(msg)
		return bytes.Equal(got[:], m.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHMACStateMatchesOneShot(t *testing.T) {
	key := []byte("a key longer than nothing")
	state := NewHMAC(key)
	for i := 0; i < 20; i++ {
		msg := bytes.Repeat([]byte{byte(i)}, i*13)
		if got, want := state.Sum(msg), HMAC(key, msg); got != want {
			t.Fatalf("iteration %d: HMACState.Sum != HMAC", i)
		}
	}
}

// RFC 7914 section 11 PBKDF2-HMAC-SHA256 test vectors.
func TestPBKDF2RFC7914(t *testing.T) {
	tests := []struct {
		name           string
		password, salt string
		c, dkLen       int
		want           string
	}{
		{
			"passwd-c1", "passwd", "salt", 1, 64,
			"55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc" +
				"49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783",
		},
		{
			"password-c80000", "Password", "NaCl", 80000, 64,
			"4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56" +
				"a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.c > 1000 && testing.Short() {
				t.Skip("skipping high-iteration vector in -short mode")
			}
			got := PBKDF2([]byte(tt.password), []byte(tt.salt), tt.c, tt.dkLen)
			if hex.EncodeToString(got) != tt.want {
				t.Errorf("PBKDF2 = %x, want %s", got, tt.want)
			}
		})
	}
}

func TestPBKDF2Lengths(t *testing.T) {
	for _, dkLen := range []int{1, 31, 32, 33, 64, 100} {
		dk := PBKDF2([]byte("p"), []byte("s"), 2, dkLen)
		if len(dk) != dkLen {
			t.Errorf("dkLen %d: got %d bytes", dkLen, len(dk))
		}
	}
}

func TestPBKDF2PanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-iterations": func() { PBKDF2([]byte("p"), []byte("s"), 0, 32) },
		"zero-length":     func() { PBKDF2([]byte("p"), []byte("s"), 1, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func BenchmarkDigest1K(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Digest(buf)
	}
}
