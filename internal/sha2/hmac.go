package sha2

// HMAC computes HMAC-SHA256(key, msg) per RFC 2104.
func HMAC(key, msg []byte) [Size]byte {
	var keyBlock [BlockSize]byte
	if len(key) > BlockSize {
		sum := Digest(key)
		copy(keyBlock[:], sum[:])
	} else {
		copy(keyBlock[:], key)
	}

	var ipad, opad [BlockSize]byte
	for i := range keyBlock {
		ipad[i] = keyBlock[i] ^ 0x36
		opad[i] = keyBlock[i] ^ 0x5c
	}

	inner := New()
	inner.Write(ipad[:])
	inner.Write(msg)
	innerSum := inner.Sum256()

	outer := New()
	outer.Write(opad[:])
	outer.Write(innerSum[:])
	return outer.Sum256()
}

// HMACState is a reusable HMAC-SHA256 keyed state. It precomputes the
// padded-key block hashes so repeated MACs under the same key (as in
// PBKDF2 iterations) cost two compressions instead of four.
type HMACState struct {
	inner, outer Hash
}

// NewHMAC returns an HMACState keyed with key.
func NewHMAC(key []byte) *HMACState {
	var keyBlock [BlockSize]byte
	if len(key) > BlockSize {
		sum := Digest(key)
		copy(keyBlock[:], sum[:])
	} else {
		copy(keyBlock[:], key)
	}
	var ipad, opad [BlockSize]byte
	for i := range keyBlock {
		ipad[i] = keyBlock[i] ^ 0x36
		opad[i] = keyBlock[i] ^ 0x5c
	}
	var s HMACState
	s.inner.Reset()
	s.inner.Write(ipad[:])
	s.outer.Reset()
	s.outer.Write(opad[:])
	return &s
}

// Sum returns HMAC(key, msg) for the precomputed key.
func (s *HMACState) Sum(msg []byte) [Size]byte {
	inner := s.inner // copy of the keyed inner state
	inner.Write(msg)
	innerSum := inner.Sum256()
	outer := s.outer
	outer.Write(innerSum[:])
	return outer.Sum256()
}
