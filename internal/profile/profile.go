// Package profile defines performance profiles — the input to inverted
// benchmarking — and a profiler that measures them from executions.
//
// The paper's widget generator is a modified PerfProx: it takes a
// performance profile of a reference workload (the paper profiles SPEC CPU
// 2017's Leela with hardware counters: "instruction mix, branch behavior,
// memory access patterns, and data dependencies") and synthesizes programs
// matching that profile. Profile is the Go representation of that input;
// Report is what the profiler measures back from a run, used both to
// derive profiles and to compare widgets against their reference workload
// (Figures 2 and 3).
package profile

import (
	"errors"
	"fmt"
	"math"

	"hashcore/internal/isa"
	"hashcore/internal/prog"
	"hashcore/internal/uarch"
	"hashcore/internal/vm"
)

// Profile is the target execution signature handed to the widget
// generator.
type Profile struct {
	// Name identifies the reference workload (e.g. "leela").
	Name string

	// Mix is the dynamic instruction mix over isa.Classes; fractions
	// should sum to 1 (Normalize enforces this).
	Mix map[isa.Class]float64

	// BranchTaken is the fraction of conditional branches that are taken.
	BranchTaken float64
	// BranchDataDep is the fraction of conditional branches whose outcome
	// depends on loaded data (hard to predict); the remainder are
	// loop-closing or pattern branches (easy to predict).
	BranchDataDep float64
	// BranchBias is P(taken) for data-dependent branches; 0.5 is a coin
	// flip (maximally unpredictable).
	BranchBias float64

	// Memory access pattern fractions (should sum to 1 over the four).
	MemSequential   float64
	MemStrided      float64
	MemRandom       float64
	MemPointerChase float64
	// WorkingSet is the scratch-memory size in bytes (power of two).
	WorkingSet int

	// BlockMean/BlockStd describe the basic-block size distribution.
	BlockMean float64
	BlockStd  float64
	// DepDist is the mean register-dependency distance in instructions
	// (small = long serial chains, large = high ILP).
	DepDist float64

	// TargetDynamic is the dynamic instruction budget for one widget.
	TargetDynamic int
}

// Validation errors.
var (
	ErrBadMix        = errors.New("profile: instruction mix fractions invalid")
	ErrBadFraction   = errors.New("profile: fraction outside [0,1]")
	ErrBadWorkingSet = errors.New("profile: working set must be a power of two within prog limits")
	ErrBadShape      = errors.New("profile: structural parameter out of range")
)

// Validate checks the profile is usable by the generator.
func (p *Profile) Validate() error {
	var sum float64
	for _, class := range isa.Classes {
		f := p.Mix[class]
		if f < 0 || f > 1 {
			return fmt.Errorf("%w: %s = %v", ErrBadMix, class, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: sum = %v", ErrBadMix, sum)
	}
	for name, f := range map[string]float64{
		"BranchTaken":   p.BranchTaken,
		"BranchDataDep": p.BranchDataDep,
		"BranchBias":    p.BranchBias,
	} {
		if f < 0 || f > 1 {
			return fmt.Errorf("%w: %s = %v", ErrBadFraction, name, f)
		}
	}
	memSum := p.MemSequential + p.MemStrided + p.MemRandom + p.MemPointerChase
	if math.Abs(memSum-1) > 1e-6 {
		return fmt.Errorf("%w: memory pattern sum = %v", ErrBadFraction, memSum)
	}
	for _, f := range []float64{p.MemSequential, p.MemStrided, p.MemRandom, p.MemPointerChase} {
		if f < 0 || f > 1 {
			return fmt.Errorf("%w: memory pattern fraction %v", ErrBadFraction, f)
		}
	}
	ws := p.WorkingSet
	if ws < prog.MinMemSize || ws > prog.MaxMemSize || ws&(ws-1) != 0 {
		return fmt.Errorf("%w: %d", ErrBadWorkingSet, ws)
	}
	if p.BlockMean < 2 || p.BlockMean > 1000 || p.BlockStd < 0 {
		return fmt.Errorf("%w: block mean/std %v/%v", ErrBadShape, p.BlockMean, p.BlockStd)
	}
	if p.DepDist < 1 {
		return fmt.Errorf("%w: dependency distance %v", ErrBadShape, p.DepDist)
	}
	if p.TargetDynamic < 1000 || p.TargetDynamic > 1<<26 {
		return fmt.Errorf("%w: target dynamic %d", ErrBadShape, p.TargetDynamic)
	}
	return nil
}

// Normalize scales the instruction-mix and memory-pattern fractions to sum
// to 1 (no-op for empty mixes).
func (p *Profile) Normalize() {
	var sum float64
	for _, f := range p.Mix {
		sum += f
	}
	if sum > 0 {
		for c, f := range p.Mix {
			p.Mix[c] = f / sum
		}
	}
	memSum := p.MemSequential + p.MemStrided + p.MemRandom + p.MemPointerChase
	if memSum > 0 {
		p.MemSequential /= memSum
		p.MemStrided /= memSum
		p.MemRandom /= memSum
		p.MemPointerChase /= memSum
	}
}

// Clone returns a deep copy (the Mix map is not shared).
func (p *Profile) Clone() *Profile {
	q := *p
	q.Mix = make(map[isa.Class]float64, len(p.Mix))
	for c, f := range p.Mix {
		q.Mix[c] = f
	}
	return &q
}

// Report is the measured execution signature of one run: the quantities
// the paper reads from performance counters.
type Report struct {
	Name string

	// Functional measurements (from the VM).
	DynamicInstructions uint64
	Mix                 map[isa.Class]float64
	BranchTaken         float64
	OutputBytes         int
	Truncated           bool

	// Timing measurements (from the uarch model).
	IPC            float64
	Cycles         float64
	BranchAccuracy float64
	MPKI           float64
	L1DHitRate     float64
	L2HitRate      float64
	L3HitRate      float64
	L1IHitRate     float64
}

// Measure executes p on a fresh VM attached to a fresh timing core and
// returns the measured report.
func Measure(name string, p *prog.Program, cfg uarch.Config, params vm.Params) (*Report, error) {
	metrics, res, err := uarch.MeasureProgram(p, cfg, params)
	if err != nil {
		return nil, fmt.Errorf("profile: measuring %s: %w", name, err)
	}
	return buildReport(name, metrics, res), nil
}

// MeasureFunctional executes p on the VM only (no timing model); timing
// fields of the report are zero. It is much faster and sufficient for mix
// and branch-behaviour measurements.
func MeasureFunctional(name string, p *prog.Program, params vm.Params) (*Report, error) {
	res, err := vm.Run(p, params, nil)
	if err != nil {
		return nil, fmt.Errorf("profile: measuring %s: %w", name, err)
	}
	return buildReport(name, uarch.Metrics{}, res), nil
}

func buildReport(name string, m uarch.Metrics, res *vm.Result) *Report {
	r := &Report{
		Name:                name,
		DynamicInstructions: res.Retired,
		Mix:                 make(map[isa.Class]float64, len(isa.Classes)),
		OutputBytes:         len(res.Output),
		Truncated:           res.Truncated,
		IPC:                 m.IPC,
		Cycles:              m.Cycles,
		BranchAccuracy:      m.BranchAccuracy,
		MPKI:                m.MPKI,
		L1DHitRate:          m.L1DHitRate,
		L2HitRate:           m.L2HitRate,
		L3HitRate:           m.L3HitRate,
		L1IHitRate:          m.L1IHitRate,
	}
	if res.Retired > 0 {
		for _, class := range isa.Classes {
			r.Mix[class] = float64(res.ClassCounts[class]) / float64(res.Retired)
		}
	}
	if res.CondBranches > 0 {
		r.BranchTaken = float64(res.TakenBranches) / float64(res.CondBranches)
	}
	return r
}

// MixDistance returns the L1 distance between two instruction mixes
// (0 = identical, 2 = disjoint). Used by tests and the experiment harness
// to quantify how closely widgets match their target profile.
func MixDistance(a, b map[isa.Class]float64) float64 {
	var d float64
	for _, class := range isa.Classes {
		d += math.Abs(a[class] - b[class])
	}
	return d
}
