package profile

import (
	"errors"
	"testing"

	"hashcore/internal/isa"
	"hashcore/internal/prog"
	"hashcore/internal/uarch"
	"hashcore/internal/vm"
)

func validProfile() *Profile {
	return &Profile{
		Name: "test",
		Mix: map[isa.Class]float64{
			isa.ClassIntALU: 0.5,
			isa.ClassIntMul: 0.05,
			isa.ClassFPALU:  0.05,
			isa.ClassLoad:   0.15,
			isa.ClassStore:  0.05,
			isa.ClassBranch: 0.15,
			isa.ClassVector: 0.05,
		},
		BranchTaken:     0.6,
		BranchDataDep:   0.3,
		BranchBias:      0.5,
		MemSequential:   0.25,
		MemStrided:      0.25,
		MemRandom:       0.25,
		MemPointerChase: 0.25,
		WorkingSet:      1 << 20,
		BlockMean:       6,
		BlockStd:        2,
		DepDist:         3,
		TargetDynamic:   100_000,
	}
}

func TestValidateAcceptsGoodProfile(t *testing.T) {
	if err := validProfile().Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Profile)
		wantErr error
	}{
		{"mix does not sum to 1", func(p *Profile) { p.Mix[isa.ClassIntALU] = 0.9 }, ErrBadMix},
		{"negative mix", func(p *Profile) {
			p.Mix[isa.ClassIntALU] = -0.1
			p.Mix[isa.ClassIntMul] = 0.65
		}, ErrBadMix},
		{"branch taken out of range", func(p *Profile) { p.BranchTaken = 1.5 }, ErrBadFraction},
		{"mem fractions do not sum", func(p *Profile) { p.MemRandom = 0.5 }, ErrBadFraction},
		{"working set not pow2", func(p *Profile) { p.WorkingSet = 3000000 }, ErrBadWorkingSet},
		{"working set too small", func(p *Profile) { p.WorkingSet = 1024 }, ErrBadWorkingSet},
		{"block mean tiny", func(p *Profile) { p.BlockMean = 1 }, ErrBadShape},
		{"dep dist zero", func(p *Profile) { p.DepDist = 0 }, ErrBadShape},
		{"target too small", func(p *Profile) { p.TargetDynamic = 10 }, ErrBadShape},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validProfile()
			tt.mutate(p)
			if err := p.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	p := validProfile()
	for c := range p.Mix {
		p.Mix[c] *= 3 // break normalization uniformly
	}
	p.MemSequential, p.MemStrided, p.MemRandom, p.MemPointerChase = 2, 2, 2, 2
	p.Normalize()
	if err := p.Validate(); err != nil {
		t.Fatalf("normalized profile still invalid: %v", err)
	}
	if p.MemSequential != 0.25 {
		t.Errorf("MemSequential = %v, want 0.25", p.MemSequential)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := validProfile()
	q := p.Clone()
	q.Mix[isa.ClassIntALU] = 0.99
	if p.Mix[isa.ClassIntALU] == 0.99 {
		t.Fatal("Clone shares the Mix map")
	}
}

func TestMixDistance(t *testing.T) {
	a := map[isa.Class]float64{isa.ClassIntALU: 1}
	b := map[isa.Class]float64{isa.ClassBranch: 1}
	if d := MixDistance(a, a); d != 0 {
		t.Errorf("distance(a,a) = %v, want 0", d)
	}
	if d := MixDistance(a, b); d != 2 {
		t.Errorf("distance(disjoint) = %v, want 2", d)
	}
}

func testProgram(t *testing.T) *prog.Program {
	t.Helper()
	b := prog.NewBuilder(prog.MinMemSize, 1)
	entry := b.NewBlock()
	loop := b.NewBlock()
	exit := b.NewBlock()
	b.SetBlock(entry)
	b.MovI(15, 100)
	b.MovI(14, 0)
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Load(1, 15, 0)
	b.Op3(isa.OpAdd, 2, 2, 1)
	b.AddI(15, 15, -1)
	b.Branch(isa.OpBne, 15, 14, loop)
	b.SetBlock(exit)
	b.Halt()
	return b.MustBuild()
}

func TestMeasureFunctional(t *testing.T) {
	r, err := MeasureFunctional("t", testProgram(t), vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicInstructions == 0 {
		t.Fatal("no instructions measured")
	}
	if r.IPC != 0 {
		t.Error("functional measurement should not report IPC")
	}
	if r.Mix[isa.ClassLoad] == 0 {
		t.Error("load fraction missing from mix")
	}
	if r.BranchTaken <= 0.9 {
		t.Errorf("loop branch taken rate = %v, want ~0.99", r.BranchTaken)
	}
	var sum float64
	for _, class := range isa.Classes {
		sum += r.Mix[class]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("measured mix sums to %v, want 1", sum)
	}
}

func TestMeasureWithTiming(t *testing.T) {
	r, err := Measure("t", testProgram(t), uarch.IvyBridge(), vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Error("timing measurement missing IPC")
	}
	if r.Cycles <= 0 {
		t.Error("timing measurement missing cycles")
	}
	if r.BranchAccuracy <= 0 {
		t.Error("timing measurement missing branch accuracy")
	}
}

func TestMeasureRejectsInvalidProgram(t *testing.T) {
	bad := &prog.Program{MemSize: 7}
	if _, err := MeasureFunctional("bad", bad, vm.Params{}); err == nil {
		t.Error("MeasureFunctional accepted an invalid program")
	}
	if _, err := Measure("bad", bad, uarch.IvyBridge(), vm.Params{}); err == nil {
		t.Error("Measure accepted an invalid program")
	}
}
