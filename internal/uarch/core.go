package uarch

import (
	"hashcore/internal/isa"
	"hashcore/internal/prog"
	"hashcore/internal/vm"
)

// UnitConfig describes the functional units serving one instruction class.
type UnitConfig struct {
	// Count is the number of units (issue ports) for the class.
	Count int
	// Latency is the default execute latency in cycles.
	Latency float64
	// Pipelined units accept a new operation every cycle; non-pipelined
	// units are busy for the full latency (divider-style).
	Pipelined bool
}

// Config describes the modeled core.
type Config struct {
	// Name labels the configuration in reports.
	Name string
	// FetchWidth is the maximum dispatch rate (instructions/cycle).
	FetchWidth int
	// RetireWidth is the maximum in-order retire rate.
	RetireWidth int
	// ROBSize is the reorder-buffer capacity (maximum in-flight window).
	ROBSize int
	// MispredictPenalty is the front-end refill bubble after a
	// mispredicted branch resolves, in cycles.
	MispredictPenalty float64
	// Predictor selects the branch direction predictor.
	Predictor PredictorKind
	// Units maps each instruction class to its functional units.
	Units map[isa.Class]UnitConfig
	// OpLatency overrides the class latency for specific opcodes
	// (e.g. fdiv, fsqrt).
	OpLatency map[isa.Opcode]float64
	// NonPipelinedOps lists opcodes whose unit is busy for the full
	// latency regardless of the class's Pipelined flag.
	NonPipelinedOps map[isa.Opcode]bool
	// L1I is the instruction cache; L1D, L2, L3 the data hierarchy.
	L1I CacheConfig
	L1D CacheConfig
	L2  CacheConfig
	L3  CacheConfig
	// MemLatency is the access latency when every cache level misses.
	MemLatency float64
	// ICodeBytes is the modeled size of one instruction in instruction
	// memory, used to lay static instructions out in I-cache lines.
	ICodeBytes int
}

// IvyBridge returns a configuration loosely modeled on the paper's test
// platform, a Xeon E5-2430 v2 (Ivy Bridge-EP): 4-wide, 168-entry ROB,
// 32 KiB L1s, 256 KiB L2, 15 MiB L3.
func IvyBridge() Config {
	return Config{
		Name:              "ivybridge-like",
		FetchWidth:        4,
		RetireWidth:       4,
		ROBSize:           168,
		MispredictPenalty: 14,
		Predictor:         PredTournament,
		Units: map[isa.Class]UnitConfig{
			isa.ClassIntALU: {Count: 3, Latency: 1, Pipelined: true},
			isa.ClassIntMul: {Count: 1, Latency: 3, Pipelined: true},
			isa.ClassFPALU:  {Count: 2, Latency: 3, Pipelined: true},
			isa.ClassLoad:   {Count: 2, Latency: 0, Pipelined: true}, // latency from cache
			isa.ClassStore:  {Count: 1, Latency: 1, Pipelined: true},
			isa.ClassBranch: {Count: 1, Latency: 1, Pipelined: true},
			isa.ClassVector: {Count: 1, Latency: 2, Pipelined: true},
		},
		OpLatency: map[isa.Opcode]float64{
			isa.OpFMul:  5,
			isa.OpFDiv:  14,
			isa.OpFSqrt: 14,
		},
		NonPipelinedOps: map[isa.Opcode]bool{
			isa.OpFDiv:  true,
			isa.OpFSqrt: true,
		},
		L1I: CacheConfig{Size: 32 << 10, Assoc: 8, LineSize: 64, Latency: 0},
		L1D: CacheConfig{Size: 32 << 10, Assoc: 8, LineSize: 64, Latency: 4},
		L2:  CacheConfig{Size: 256 << 10, Assoc: 8, LineSize: 64, Latency: 12},
		// The real part has a 15 MiB 20-way sliced L3; the model rounds to
		// the nearest power-of-two geometry.
		L3:         CacheConfig{Size: 16 << 20, Assoc: 16, LineSize: 64, Latency: 30},
		MemLatency: 180,
		ICodeBytes: 16,
	}
}

// Metrics summarizes a simulated execution.
type Metrics struct {
	Instructions uint64
	Cycles       float64
	IPC          float64

	CondBranches   uint64
	Mispredicts    uint64
	BranchAccuracy float64 // correct / conditional branches
	MPKI           float64 // mispredicts per kilo-instruction

	L1DHitRate float64
	L2HitRate  float64
	L3HitRate  float64
	L1IHitRate float64
	MemAccess  uint64

	ClassCounts map[isa.Class]uint64
}

// Core is the timing model. It implements vm.Observer: attach it to a VM
// run and read Metrics afterwards. Core is single-use per measurement; call
// Reset to reuse.
type Core struct {
	cfg    Config
	pred   Predictor
	icache *Cache
	dmem   *Hierarchy

	units map[isa.Class][]float64 // per-unit free time

	intReady [isa.NumIntRegs]float64
	fpReady  [isa.NumFPRegs]float64
	vecReady [isa.NumVecRegs]float64

	retireRing []float64
	count      uint64
	dispatch   float64 // last dispatch time
	frontendAt float64 // front-end resume time after redirects
	lastRetire float64

	condBranches uint64
	mispredicts  uint64
	classCounts  [8]uint64

	fetchInterval  float64
	retireInterval float64
}

var _ vm.Observer = (*Core)(nil)

// NewCore builds a timing model for cfg.
func NewCore(cfg Config) *Core {
	c := &Core{
		cfg:    cfg,
		pred:   NewPredictor(cfg.Predictor),
		icache: NewCache(cfg.L1I),
		dmem:   NewHierarchy(cfg.MemLatency, cfg.L1D, cfg.L2, cfg.L3),
	}
	c.units = make(map[isa.Class][]float64, len(cfg.Units))
	for class, u := range cfg.Units {
		c.units[class] = make([]float64, u.Count)
	}
	c.retireRing = make([]float64, cfg.ROBSize)
	c.fetchInterval = 1 / float64(cfg.FetchWidth)
	c.retireInterval = 1 / float64(cfg.RetireWidth)
	return c
}

// Reset clears all model state for a fresh measurement.
func (c *Core) Reset() {
	c.pred = NewPredictor(c.cfg.Predictor)
	c.icache.Reset()
	c.dmem.Reset()
	for _, u := range c.units {
		for i := range u {
			u[i] = 0
		}
	}
	c.intReady = [isa.NumIntRegs]float64{}
	c.fpReady = [isa.NumFPRegs]float64{}
	c.vecReady = [isa.NumVecRegs]float64{}
	for i := range c.retireRing {
		c.retireRing[i] = 0
	}
	c.count = 0
	c.dispatch = 0
	c.frontendAt = 0
	c.lastRetire = 0
	c.condBranches = 0
	c.mispredicts = 0
	c.classCounts = [8]uint64{}
}

// OnRetire advances the timing model by one retired instruction.
func (c *Core) OnRetire(ev *vm.Event) {
	c.classCounts[ev.Class]++

	// 1. In-order dispatch: rate-limited by fetch width, gated by
	// front-end redirects (mispredictions) and I-cache misses.
	dispatch := c.dispatch + c.fetchInterval
	if c.frontendAt > dispatch {
		dispatch = c.frontendAt
	}
	if !c.icache.Access(uint64(ev.StaticID) * uint64(c.cfg.ICodeBytes)) {
		// Instruction fetch missed L1I; charge the L2 latency as a
		// front-end bubble.
		dispatch += c.cfg.L2.Latency
	}
	// ROB occupancy: the window admits at most ROBSize in-flight
	// instructions, so dispatch waits for the retire of the instruction
	// ROBSize older.
	ringIdx := int(c.count % uint64(len(c.retireRing)))
	if c.count >= uint64(len(c.retireRing)) && c.retireRing[ringIdx] > dispatch {
		dispatch = c.retireRing[ringIdx]
	}
	c.dispatch = dispatch

	// 2. Register dependencies.
	ready := dispatch
	dstFile, aFile, bFile := ev.Op.Operands()
	if t := c.srcReady(aFile, ev.A); t > ready {
		ready = t
	}
	if t := c.srcReady(bFile, ev.B); t > ready {
		ready = t
	}

	// 3. Functional-unit contention.
	unit := c.units[ev.Class]
	best := 0
	for i := 1; i < len(unit); i++ {
		if unit[i] < unit[best] {
			best = i
		}
	}
	issue := ready
	if unit != nil && unit[best] > issue {
		issue = unit[best]
	}

	// 4. Execution latency.
	var latency float64
	if ev.Class == isa.ClassLoad {
		latency = c.dmem.Access(ev.Addr)
	} else if l, ok := c.cfg.OpLatency[ev.Op]; ok {
		latency = l
	} else {
		latency = c.cfg.Units[ev.Class].Latency
	}
	if ev.Class == isa.ClassStore {
		// Stores update the cache state; their latency is hidden by the
		// store buffer, but the access keeps the hierarchy state honest.
		c.dmem.Access(ev.Addr)
	}
	complete := issue + latency

	if unit != nil {
		if c.cfg.NonPipelinedOps[ev.Op] || !c.cfg.Units[ev.Class].Pipelined {
			unit[best] = complete
		} else {
			unit[best] = issue + 1
		}
	}

	// 5. Destination availability.
	if dstFile != isa.RegNone {
		c.setDstReady(dstFile, ev.Dst, complete)
	}

	// 6. Branch resolution.
	if ev.Op.IsCondBranch() {
		c.condBranches++
		predicted := c.pred.Predict(ev.StaticID)
		if predicted != ev.Taken {
			c.mispredicts++
			resume := complete + c.cfg.MispredictPenalty
			if resume > c.frontendAt {
				c.frontendAt = resume
			}
		}
		c.pred.Update(ev.StaticID, ev.Taken)
	}

	// 7. In-order retire.
	retire := c.lastRetire + c.retireInterval
	if complete > retire {
		retire = complete
	}
	c.retireRing[ringIdx] = retire
	c.lastRetire = retire
	c.count++
}

func (c *Core) srcReady(f isa.RegFile, idx uint8) float64 {
	switch f {
	case isa.RegInt:
		return c.intReady[idx]
	case isa.RegFP:
		return c.fpReady[idx]
	case isa.RegVec:
		return c.vecReady[idx]
	default:
		return 0
	}
}

func (c *Core) setDstReady(f isa.RegFile, idx uint8, t float64) {
	switch f {
	case isa.RegInt:
		c.intReady[idx] = t
	case isa.RegFP:
		c.fpReady[idx] = t
	case isa.RegVec:
		c.vecReady[idx] = t
	}
}

// Metrics returns the accumulated measurements.
func (c *Core) Metrics() Metrics {
	m := Metrics{
		Instructions: c.count,
		Cycles:       c.lastRetire,
		CondBranches: c.condBranches,
		Mispredicts:  c.mispredicts,
		L1DHitRate:   c.dmem.Level(0).HitRate(),
		L2HitRate:    c.dmem.Level(1).HitRate(),
		L3HitRate:    c.dmem.Level(2).HitRate(),
		L1IHitRate:   c.icache.HitRate(),
		MemAccess:    c.dmem.MemAccesses(),
		ClassCounts:  make(map[isa.Class]uint64, len(isa.Classes)),
	}
	if m.Cycles > 0 {
		m.IPC = float64(m.Instructions) / m.Cycles
	}
	if m.CondBranches > 0 {
		m.BranchAccuracy = float64(m.CondBranches-m.Mispredicts) / float64(m.CondBranches)
	}
	if m.Instructions > 0 {
		m.MPKI = float64(m.Mispredicts) / float64(m.Instructions) * 1000
	}
	for _, class := range isa.Classes {
		m.ClassCounts[class] = c.classCounts[class]
	}
	return m
}

// MeasureProgram runs p on a fresh VM with a fresh Core and returns the
// timing metrics together with the functional result.
func MeasureProgram(p *prog.Program, cfg Config, params vm.Params) (Metrics, *vm.Result, error) {
	core := NewCore(cfg)
	res, err := vm.Run(p, params, core)
	if err != nil {
		return Metrics{}, nil, err
	}
	return core.Metrics(), res, nil
}
