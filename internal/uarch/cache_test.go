package uarch

import "testing"

func testCacheConfig() CacheConfig {
	return CacheConfig{Size: 1 << 10, Assoc: 2, LineSize: 64, Latency: 4}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(testCacheConfig())
	if c.Access(0x100) {
		t.Error("first access should miss")
	}
	if !c.Access(0x100) {
		t.Error("second access to same address should hit")
	}
	if !c.Access(0x13f) {
		t.Error("access within the same 64B line should hit")
	}
	if c.Access(0x140) {
		t.Error("access to the next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 2/2", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 KiB, 2-way, 64B lines -> 8 sets. Addresses mapping to set 0 are
	// multiples of 8*64 = 512.
	c := NewCache(testCacheConfig())
	c.Access(0)       // miss, fills way 0
	c.Access(512)     // miss, fills way 1
	c.Access(0)       // hit, refreshes line 0
	c.Access(2 * 512) // miss, evicts 512 (LRU)
	if !c.Access(0) {
		t.Error("line 0 should still be resident")
	}
	if c.Access(512) {
		t.Error("line 512 should have been evicted")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	c := NewCache(testCacheConfig())
	// Fill every set once; none of these should evict each other.
	for set := 0; set < 8; set++ {
		c.Access(uint64(set * 64))
	}
	for set := 0; set < 8; set++ {
		if !c.Access(uint64(set * 64)) {
			t.Errorf("set %d lost its line", set)
		}
	}
}

func TestCacheHitRateAndReset(t *testing.T) {
	c := NewCache(testCacheConfig())
	if got := c.HitRate(); got != 0 {
		t.Errorf("empty cache hit rate = %v, want 0", got)
	}
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Errorf("hit rate = %v, want 2/3", got)
	}
	c.Reset()
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Error("reset did not clear stats")
	}
	if c.Access(0) {
		t.Error("reset did not clear contents")
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for name, cfg := range map[string]CacheConfig{
		"zero":         {},
		"non-pow2-set": {Size: 3 * 64, Assoc: 1, LineSize: 64},
		"bad-line":     {Size: 1 << 10, Assoc: 2, LineSize: 48},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewCache(cfg)
		})
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(100,
		CacheConfig{Size: 1 << 10, Assoc: 2, LineSize: 64, Latency: 4},
		CacheConfig{Size: 1 << 14, Assoc: 4, LineSize: 64, Latency: 12},
	)
	if got := h.Access(0); got != 100 {
		t.Errorf("cold access latency = %v, want 100 (memory)", got)
	}
	if got := h.Access(0); got != 4 {
		t.Errorf("warm access latency = %v, want 4 (L1)", got)
	}
	if h.MemAccesses() != 1 {
		t.Errorf("MemAccesses = %d, want 1", h.MemAccesses())
	}

	// Evict from L1 by filling its set; the L2 copy should still hit.
	h.Access(512)
	h.Access(1024)
	h.Access(1536) // L1 set 0 now holds victims; line 0 evicted from L1
	if got := h.Access(0); got != 12 {
		t.Errorf("L1-evicted access latency = %v, want 12 (L2)", got)
	}

	if h.NumLevels() != 2 {
		t.Errorf("NumLevels = %d, want 2", h.NumLevels())
	}
	h.Reset()
	if got := h.Access(0); got != 100 {
		t.Errorf("post-reset access latency = %v, want 100", got)
	}
}

func TestCacheConfigNumSets(t *testing.T) {
	cfg := CacheConfig{Size: 32 << 10, Assoc: 8, LineSize: 64}
	if got := cfg.NumSets(); got != 64 {
		t.Errorf("NumSets = %d, want 64", got)
	}
	if got := (CacheConfig{}).NumSets(); got != 0 {
		t.Errorf("zero config NumSets = %d, want 0", got)
	}
}
