// Package uarch is a trace-driven timing model of an out-of-order
// superscalar processor. It consumes retired-instruction events from the
// VM (internal/vm) and estimates cycles, IPC, branch-prediction accuracy
// and cache behaviour for the executed instruction stream.
//
// The paper evaluates widgets on a Xeon E5-2430 v2 ("Ivy Bridge") with
// hardware performance counters; this package is the substitute substrate.
// It implements a finite-window dynamic-scheduling model: instructions
// dispatch in order at a bounded width, wait for their register
// dependencies, contend for per-class functional units, and retire in
// order through a reorder buffer. Branch mispredictions stall the
// front-end; loads pay the latency of the cache level that hits.
//
// The model intentionally simplifies the real machine (no store-to-load
// forwarding, no prefetchers, no TLBs, rate-limited rather than
// slot-scheduled ports). These effects shift absolute IPC but preserve the
// distribution *shape* over widget populations, which is what Figures 2
// and 3 of the paper measure.
package uarch

// CacheConfig describes one cache level.
type CacheConfig struct {
	// Size is the total capacity in bytes.
	Size int
	// Assoc is the set associativity.
	Assoc int
	// LineSize is the cache line size in bytes.
	LineSize int
	// Latency is the access latency in cycles for a hit at this level.
	Latency float64
}

// NumSets returns the number of sets implied by the configuration.
func (c CacheConfig) NumSets() int {
	if c.Size <= 0 || c.Assoc <= 0 || c.LineSize <= 0 {
		return 0
	}
	return c.Size / (c.Assoc * c.LineSize)
}

// cacheLine is one way of one set.
type cacheLine struct {
	tag      uint64
	valid    bool
	lastUsed uint64
}

// Cache is a set-associative cache with LRU replacement.
type Cache struct {
	cfg     CacheConfig
	sets    []cacheLine // numSets * assoc, row-major
	numSets int
	shift   uint // log2(lineSize)
	clock   uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache from cfg. It panics if the geometry is invalid
// (non-power-of-two sets or line size), which is a configuration bug.
func NewCache(cfg CacheConfig) *Cache {
	numSets := cfg.NumSets()
	if numSets == 0 || numSets&(numSets-1) != 0 {
		panic("uarch: cache set count must be a positive power of two")
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("uarch: cache line size must be a power of two")
	}
	shift := uint(0)
	for l := cfg.LineSize; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:     cfg,
		sets:    make([]cacheLine, numSets*cfg.Assoc),
		numSets: numSets,
		shift:   shift,
	}
}

// Access looks up addr, updating LRU state and filling on miss.
// It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	block := addr >> c.shift
	set := int(block) & (c.numSets - 1)
	tag := block >> uint(log2i(c.numSets))

	ways := c.sets[set*c.cfg.Assoc : (set+1)*c.cfg.Assoc]
	victim := 0
	var victimUsed uint64 = ^uint64(0)
	for i := range ways {
		w := &ways[i]
		if w.valid && w.tag == tag {
			w.lastUsed = c.clock
			c.hits++
			return true
		}
		if !w.valid {
			victim = i
			victimUsed = 0
		} else if w.lastUsed < victimUsed {
			victim = i
			victimUsed = w.lastUsed
		}
	}
	ways[victim] = cacheLine{tag: tag, valid: true, lastUsed: c.clock}
	c.misses++
	return false
}

// Stats returns cumulative (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits / accesses, or 0 for no accesses.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = cacheLine{}
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
}

// Hierarchy is an inclusive multi-level data-cache hierarchy backed by
// main memory.
type Hierarchy struct {
	levels     []*Cache
	memLatency float64
	memAccess  uint64
}

// NewHierarchy builds a hierarchy from the given level configurations
// (nearest first) and the main-memory latency.
func NewHierarchy(memLatency float64, cfgs ...CacheConfig) *Hierarchy {
	h := &Hierarchy{memLatency: memLatency}
	for _, cfg := range cfgs {
		h.levels = append(h.levels, NewCache(cfg))
	}
	return h
}

// Access returns the latency of accessing addr: the hit latency of the
// first level that hits, or the memory latency. All missing levels are
// filled (inclusive hierarchy).
func (h *Hierarchy) Access(addr uint64) float64 {
	latency := h.memLatency
	hitLevel := -1
	for i, c := range h.levels {
		if c.Access(addr) {
			latency = c.cfg.Latency
			hitLevel = i
			break
		}
	}
	if hitLevel == -1 {
		h.memAccess++
	}
	return latency
}

// Level returns cache level i (0-based, nearest first).
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// NumLevels returns the number of cache levels.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// MemAccesses returns the number of accesses that missed every level.
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccess }

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
	h.memAccess = 0
}

func log2i(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
