package uarch

import (
	"testing"

	"hashcore/internal/rng"
)

// runPredictor feeds a synthetic outcome stream for a single branch PC and
// returns the prediction accuracy over the second half (after warmup).
func runPredictor(p Predictor, outcomes []bool) float64 {
	const pc = 0x42
	correct, counted := 0, 0
	for i, taken := range outcomes {
		pred := p.Predict(pc)
		if i >= len(outcomes)/2 {
			counted++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(counted)
}

func repeatPattern(pattern []bool, n int) []bool {
	out := make([]bool, 0, n)
	for len(out) < n {
		out = append(out, pattern...)
	}
	return out[:n]
}

func TestAllPredictorsLearnBiasedStream(t *testing.T) {
	stream := repeatPattern([]bool{true}, 1000)
	for _, p := range []Predictor{
		NewBimodal(10), NewGshare(10), NewLocal(8, 8), NewTournament(10),
	} {
		if acc := runPredictor(p, stream); acc < 0.99 {
			t.Errorf("%s accuracy on all-taken = %v, want ~1.0", p.Name(), acc)
		}
	}
}

func TestHistoryPredictorsLearnAlternation(t *testing.T) {
	// T,N,T,N... is invisible to a bimodal counter but trivial for
	// history-based predictors.
	stream := repeatPattern([]bool{true, false}, 2000)
	bimodal := runPredictor(NewBimodal(10), stream)
	if bimodal > 0.75 {
		t.Errorf("bimodal accuracy on alternation = %v, expected poor (<0.75)", bimodal)
	}
	for _, p := range []Predictor{NewGshare(10), NewLocal(8, 8), NewTournament(10)} {
		if acc := runPredictor(p, stream); acc < 0.95 {
			t.Errorf("%s accuracy on alternation = %v, want > 0.95", p.Name(), acc)
		}
	}
}

func TestLocalLearnsPeriodicPattern(t *testing.T) {
	stream := repeatPattern([]bool{true, true, true, false}, 4000)
	if acc := runPredictor(NewLocal(8, 8), stream); acc < 0.95 {
		t.Errorf("local accuracy on TTTN pattern = %v, want > 0.95", acc)
	}
	if acc := runPredictor(NewTournament(10), stream); acc < 0.9 {
		t.Errorf("tournament accuracy on TTTN pattern = %v, want > 0.9", acc)
	}
}

func TestPredictorsNearChanceOnRandom(t *testing.T) {
	x := rng.NewXoshiro256(123)
	stream := make([]bool, 4000)
	for i := range stream {
		stream[i] = x.Next()&1 == 1
	}
	for _, p := range []Predictor{NewBimodal(10), NewGshare(10), NewLocal(8, 8)} {
		acc := runPredictor(p, stream)
		if acc < 0.35 || acc > 0.65 {
			t.Errorf("%s accuracy on random stream = %v, want ~0.5", p.Name(), acc)
		}
	}
}

func TestGshareUsesHistoryAcrossPCs(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome. Gshare can
	// exploit the correlation; verify B becomes predictable.
	g := NewGshare(12)
	x := rng.NewXoshiro256(5)
	correctB, countB := 0, 0
	prevA := false
	for i := 0; i < 4000; i++ {
		outcomeA := x.Next()&1 == 1
		g.Predict(0x10)
		g.Update(0x10, outcomeA)

		outcomeB := prevA
		predB := g.Predict(0x20)
		if i > 2000 {
			countB++
			if predB == outcomeB {
				correctB++
			}
		}
		g.Update(0x20, outcomeB)
		prevA = outcomeA
	}
	if acc := float64(correctB) / float64(countB); acc < 0.9 {
		t.Errorf("gshare correlated-branch accuracy = %v, want > 0.9", acc)
	}
}

func TestTwoBitCounterSaturation(t *testing.T) {
	c := twoBit(0)
	c = c.update(false)
	if c != 0 {
		t.Error("counter should saturate at 0")
	}
	c = c.update(true).update(true).update(true).update(true)
	if c != 3 {
		t.Errorf("counter = %d, want saturation at 3", c)
	}
	if !c.taken() {
		t.Error("saturated counter should predict taken")
	}
}

func TestNewPredictorKinds(t *testing.T) {
	kinds := map[PredictorKind]string{
		PredBimodal:        "bimodal",
		PredGshare:         "gshare",
		PredLocal:          "local",
		PredTournament:     "tournament",
		PredictorKind("?"): "gshare", // fallback
	}
	for kind, want := range kinds {
		if got := NewPredictor(kind).Name(); got != want {
			t.Errorf("NewPredictor(%q).Name() = %q, want %q", kind, got, want)
		}
	}
}
