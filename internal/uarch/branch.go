package uarch

// Predictor is a conditional-branch direction predictor. Predict must be
// called before Update for each dynamic branch; pc is the static
// instruction identity.
type Predictor interface {
	Predict(pc uint32) bool
	Update(pc uint32, taken bool)
	Name() string
}

// twoBit is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 taken.
type twoBit uint8

func (c twoBit) taken() bool { return c >= 2 }

func (c twoBit) update(taken bool) twoBit {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a classic per-PC table of 2-bit saturating counters.
type Bimodal struct {
	table []twoBit
	mask  uint32
}

// NewBimodal creates a bimodal predictor with 2^bits entries.
func NewBimodal(bits uint) *Bimodal {
	size := uint32(1) << bits
	t := make([]twoBit, size)
	for i := range t {
		t[i] = 2 // weakly taken, the conventional initial state
	}
	return &Bimodal{table: t, mask: size - 1}
}

var _ Predictor = (*Bimodal)(nil)

// Predict returns the predicted direction for pc.
func (b *Bimodal) Predict(pc uint32) bool { return b.table[pc&b.mask].taken() }

// Update trains the counter for pc with the actual outcome.
func (b *Bimodal) Update(pc uint32, taken bool) {
	idx := pc & b.mask
	b.table[idx] = b.table[idx].update(taken)
}

// Name returns "bimodal".
func (b *Bimodal) Name() string { return "bimodal" }

// Gshare XORs a global history register with the PC to index a table of
// 2-bit counters, capturing correlations between branches.
type Gshare struct {
	table   []twoBit
	mask    uint32
	history uint32
	bits    uint
}

// NewGshare creates a gshare predictor with 2^bits counters and a
// bits-wide global history register.
func NewGshare(bits uint) *Gshare {
	size := uint32(1) << bits
	t := make([]twoBit, size)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: size - 1, bits: bits}
}

var _ Predictor = (*Gshare)(nil)

func (g *Gshare) index(pc uint32) uint32 { return (pc ^ g.history) & g.mask }

// Predict returns the predicted direction for pc under the current global
// history.
func (g *Gshare) Predict(pc uint32) bool { return g.table[g.index(pc)].taken() }

// Update trains the indexed counter and shifts the outcome into the global
// history register.
func (g *Gshare) Update(pc uint32, taken bool) {
	idx := g.index(pc)
	g.table[idx] = g.table[idx].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= g.mask
}

// Name returns "gshare".
func (g *Gshare) Name() string { return "gshare" }

// Local is a two-level predictor with per-PC local history feeding a
// shared pattern table, capturing short repeating per-branch patterns.
type Local struct {
	histories []uint32
	pattern   []twoBit
	histMask  uint32
	patMask   uint32
}

// NewLocal creates a local predictor with 2^histBits history entries of
// patBits bits each, and a 2^patBits pattern table.
func NewLocal(histBits, patBits uint) *Local {
	pat := make([]twoBit, 1<<patBits)
	for i := range pat {
		pat[i] = 2
	}
	return &Local{
		histories: make([]uint32, 1<<histBits),
		pattern:   pat,
		histMask:  (1 << histBits) - 1,
		patMask:   (1 << patBits) - 1,
	}
}

var _ Predictor = (*Local)(nil)

// Predict returns the predicted direction for pc from its local history
// pattern.
func (l *Local) Predict(pc uint32) bool {
	h := l.histories[pc&l.histMask] & l.patMask
	return l.pattern[h].taken()
}

// Update trains the pattern entry for pc's current history and shifts the
// outcome into that history.
func (l *Local) Update(pc uint32, taken bool) {
	hIdx := pc & l.histMask
	h := l.histories[hIdx] & l.patMask
	l.pattern[h] = l.pattern[h].update(taken)
	l.histories[hIdx] <<= 1
	if taken {
		l.histories[hIdx] |= 1
	}
}

// Name returns "local".
func (l *Local) Name() string { return "local" }

// Tournament combines a global (gshare) and a local predictor with a
// per-PC chooser, in the style of the Alpha 21264; modern Intel cores use
// considerably more elaborate versions of the same idea.
type Tournament struct {
	global  *Gshare
	local   *Local
	chooser []twoBit // >=2 selects global
	mask    uint32
}

// NewTournament creates a tournament predictor with 2^bits chooser
// entries over NewGshare(bits) and NewLocal(bits-2, bits-2).
func NewTournament(bits uint) *Tournament {
	localBits := bits - 2
	ch := make([]twoBit, 1<<bits)
	for i := range ch {
		ch[i] = 2
	}
	return &Tournament{
		global:  NewGshare(bits),
		local:   NewLocal(localBits, localBits),
		chooser: ch,
		mask:    (1 << bits) - 1,
	}
}

var _ Predictor = (*Tournament)(nil)

// Predict consults the chooser to select between the global and local
// component predictions.
func (t *Tournament) Predict(pc uint32) bool {
	if t.chooser[pc&t.mask].taken() {
		return t.global.Predict(pc)
	}
	return t.local.Predict(pc)
}

// Update trains both components and moves the chooser toward whichever
// component was correct (when they disagree).
func (t *Tournament) Update(pc uint32, taken bool) {
	gPred := t.global.Predict(pc)
	lPred := t.local.Predict(pc)
	if gPred != lPred {
		idx := pc & t.mask
		t.chooser[idx] = t.chooser[idx].update(gPred == taken)
	}
	t.global.Update(pc, taken)
	t.local.Update(pc, taken)
}

// Name returns "tournament".
func (t *Tournament) Name() string { return "tournament" }

// PredictorKind selects a predictor implementation in a Config.
type PredictorKind string

// Supported predictor kinds.
const (
	PredBimodal    PredictorKind = "bimodal"
	PredGshare     PredictorKind = "gshare"
	PredLocal      PredictorKind = "local"
	PredTournament PredictorKind = "tournament"
)

// NewPredictor constructs the predictor named by kind with a default size
// (14 index bits, 16k entries). Unknown kinds fall back to gshare.
func NewPredictor(kind PredictorKind) Predictor {
	const bits = 14
	switch kind {
	case PredBimodal:
		return NewBimodal(bits)
	case PredLocal:
		return NewLocal(bits-2, bits-2)
	case PredTournament:
		return NewTournament(bits)
	case PredGshare:
		return NewGshare(bits)
	default:
		return NewGshare(bits)
	}
}
