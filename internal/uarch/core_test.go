package uarch

import (
	"testing"

	"hashcore/internal/isa"
	"hashcore/internal/prog"
	"hashcore/internal/vm"
)

// loopProgram builds a program that runs `body` inside a counted loop of
// the given trip count, so instruction-cache and predictor state warm up.
func loopProgram(t *testing.T, trips int64, memSize int, body func(b *prog.Builder)) *prog.Program {
	t.Helper()
	b := prog.NewBuilder(memSize, 99)
	entry := b.NewBlock()
	loop := b.NewBlock()
	exit := b.NewBlock()

	b.SetBlock(entry)
	b.MovI(15, trips)
	b.MovI(14, 0) // zero register by convention in these tests
	b.Jmp(loop)

	b.SetBlock(loop)
	body(b)
	b.AddI(15, 15, -1)
	b.Branch(isa.OpBne, 15, 14, loop)

	b.SetBlock(exit)
	b.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func measure(t *testing.T, p *prog.Program) Metrics {
	t.Helper()
	m, _, err := MeasureProgram(p, IvyBridge(), vm.Params{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIndependentALUOpsReachPortLimit(t *testing.T) {
	// 3 integer ALU units, fetch width 4: independent adds should sustain
	// close to 3 IPC once warm.
	p := loopProgram(t, 200, prog.MinMemSize, func(b *prog.Builder) {
		for i := 0; i < 120; i++ {
			dst := uint8(1 + i%12)
			b.Op3(isa.OpAdd, dst, dst, 13)
		}
	})
	m := measure(t, p)
	if m.IPC < 2.4 || m.IPC > 3.3 {
		t.Errorf("independent-ALU IPC = %.2f, want ~3 (port limit)", m.IPC)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// A single dependence chain of 1-cycle adds cannot exceed 1 IPC.
	p := loopProgram(t, 200, prog.MinMemSize, func(b *prog.Builder) {
		for i := 0; i < 120; i++ {
			b.Op3(isa.OpAdd, 1, 1, 1)
		}
	})
	m := measure(t, p)
	if m.IPC < 0.7 || m.IPC > 1.3 {
		t.Errorf("dependent-chain IPC = %.2f, want ~1", m.IPC)
	}
}

func TestNonPipelinedDividerThroughput(t *testing.T) {
	// fdiv is non-pipelined with latency 14; even independent divides are
	// limited to ~1/14 IPC by the single FP divider... plus the loop
	// bookkeeping instructions, so just assert it is very low.
	p := loopProgram(t, 100, prog.MinMemSize, func(b *prog.Builder) {
		for i := 0; i < 30; i++ {
			b.Op3(isa.OpFDiv, uint8(1+i%8), 9, 10)
		}
	})
	m := measure(t, p)
	if m.IPC > 0.35 {
		t.Errorf("fdiv IPC = %.2f, want < 0.35 (divider-bound)", m.IPC)
	}
}

func TestMulLatencyBetweenALUAndDiv(t *testing.T) {
	pChain := loopProgram(t, 200, prog.MinMemSize, func(b *prog.Builder) {
		for i := 0; i < 60; i++ {
			b.Op3(isa.OpMul, 1, 1, 2)
		}
	})
	m := measure(t, pChain)
	// Dependent multiplies: one per 3 cycles -> IPC ~1/3 plus loop ops.
	if m.IPC < 0.2 || m.IPC > 0.6 {
		t.Errorf("dependent-mul IPC = %.2f, want ~1/3", m.IPC)
	}
}

func TestPointerChaseMemoryBound(t *testing.T) {
	// Dependent loads over a large working set: every chain step pays a
	// deep-hierarchy latency. Compare against a tiny working set where
	// loads hit L1.
	mkChase := func(memSize int) *prog.Program {
		return loopProgram(t, 400, memSize, func(b *prog.Builder) {
			for i := 0; i < 10; i++ {
				b.Load(1, 1, 0) // r1 = mem[r1] — serial chain
			}
		})
	}
	large := measure(t, mkChase(64<<20)) // 64 MiB >> 15 MiB L3
	small := measure(t, mkChase(prog.MinMemSize))
	if large.IPC*4 > small.IPC {
		t.Errorf("pointer chase: large-WS IPC %.3f not much slower than small-WS IPC %.3f",
			large.IPC, small.IPC)
	}
	if large.MemAccess == 0 {
		t.Error("large working set never reached memory")
	}
	if small.L1DHitRate < 0.95 {
		t.Errorf("small working set L1D hit rate = %.3f, want ~1", small.L1DHitRate)
	}
}

func TestBranchMispredictionHurtsIPC(t *testing.T) {
	// Data-dependent branches on pseudo-random memory bits vs. the same
	// loop with an always-false condition.
	// Use a 1 MiB scratch so the loaded stream never wraps: with a tiny
	// memory the "random" bits repeat and history predictors memorize them.
	mk := func(randomCond bool) *prog.Program {
		b := prog.NewBuilder(prog.DefaultMemSize, 7)
		entry := b.NewBlock()
		loop := b.NewBlock()
		then := b.NewBlock()
		join := b.NewBlock()
		exit := b.NewBlock()

		b.SetBlock(entry)
		b.MovI(15, 3000)
		b.MovI(14, 0)
		b.MovI(13, 1)
		b.MovI(12, 0) // pointer
		b.Jmp(loop)

		b.SetBlock(loop)
		b.Load(1, 12, 0)
		b.AddI(12, 12, 8)
		if randomCond {
			b.Op3(isa.OpAnd, 2, 1, 13) // random bit from memory
		} else {
			b.MovI(2, 0)
		}
		b.Branch(isa.OpBne, 2, 14, then)

		b.SetBlock(then)
		b.Op3(isa.OpXor, 3, 3, 1)
		b.Jmp(join)

		b.SetBlock(join)
		b.AddI(15, 15, -1)
		b.Branch(isa.OpBne, 15, 14, loop)

		b.SetBlock(exit)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	random := measure(t, mk(true))
	predictable := measure(t, mk(false))

	if random.BranchAccuracy > 0.9 {
		t.Errorf("random-branch accuracy = %.3f, expected well below 0.9", random.BranchAccuracy)
	}
	if predictable.BranchAccuracy < 0.98 {
		t.Errorf("predictable-branch accuracy = %.3f, want ~1", predictable.BranchAccuracy)
	}
	if random.IPC >= predictable.IPC {
		t.Errorf("mispredictions did not reduce IPC: random %.2f vs predictable %.2f",
			random.IPC, predictable.IPC)
	}
	if random.MPKI <= predictable.MPKI {
		t.Errorf("MPKI: random %.2f vs predictable %.2f", random.MPKI, predictable.MPKI)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Independent long-latency loads beyond the ROB window cannot all
	// overlap: a tiny ROB should be slower than the real one.
	mk := func(robSize int) Metrics {
		p := loopProgram(t, 300, 64<<20, func(b *prog.Builder) {
			for i := 0; i < 12; i++ {
				dst := uint8(1 + i%10)
				// Independent strided loads: address = r13 + stride*i
				b.Load(dst, 13, int64(i*4096))
			}
			b.AddI(13, 13, 8) // advance base slowly
		})
		cfg := IvyBridge()
		cfg.ROBSize = robSize
		m, _, err := MeasureProgram(p, cfg, vm.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	tiny := mk(4)
	big := mk(168)
	if big.IPC <= tiny.IPC*1.5 {
		t.Errorf("ROB scaling: big-ROB IPC %.3f should be well above tiny-ROB IPC %.3f",
			big.IPC, tiny.IPC)
	}
}

func TestMetricsBookkeeping(t *testing.T) {
	p := loopProgram(t, 50, prog.MinMemSize, func(b *prog.Builder) {
		b.Op3(isa.OpAdd, 1, 1, 2)
		b.Load(3, 1, 0)
		b.Store(1, 3, 64)
		b.Op3(isa.OpFAdd, 1, 2, 3)
		b.Op3(isa.OpVXor, 0, 0, 0)
		b.Op3(isa.OpMul, 4, 4, 1)
	})
	m := measure(t, p)
	if m.Instructions == 0 || m.Cycles <= 0 {
		t.Fatal("no instructions or cycles recorded")
	}
	if m.ClassCounts[isa.ClassLoad] != 50 {
		t.Errorf("load count = %d, want 50", m.ClassCounts[isa.ClassLoad])
	}
	if m.ClassCounts[isa.ClassStore] != 50 {
		t.Errorf("store count = %d, want 50", m.ClassCounts[isa.ClassStore])
	}
	if m.CondBranches != 50 {
		t.Errorf("cond branches = %d, want 50", m.CondBranches)
	}
	if m.IPC <= 0 {
		t.Error("IPC not computed")
	}
}

func TestCoreReset(t *testing.T) {
	p := loopProgram(t, 100, prog.MinMemSize, func(b *prog.Builder) {
		b.Op3(isa.OpAdd, 1, 1, 2)
	})
	core := NewCore(IvyBridge())
	if _, err := vm.Run(p, vm.Params{}, core); err != nil {
		t.Fatal(err)
	}
	first := core.Metrics()
	core.Reset()
	if m := core.Metrics(); m.Instructions != 0 || m.Cycles != 0 {
		t.Fatal("Reset did not clear metrics")
	}
	if _, err := vm.Run(p, vm.Params{}, core); err != nil {
		t.Fatal(err)
	}
	second := core.Metrics()
	if first.Instructions != second.Instructions || first.Cycles != second.Cycles {
		t.Errorf("metrics differ across reset: %v vs %v cycles", first.Cycles, second.Cycles)
	}
}

func TestICachePressureSlowsLargeFootprint(t *testing.T) {
	// A loop body larger than L1I (32 KiB / 16 B = 2048 instructions)
	// should run at lower IPC than a small body with the same mix.
	small := measure(t, loopProgram(t, 600, prog.MinMemSize, func(b *prog.Builder) {
		for i := 0; i < 100; i++ {
			dst := uint8(1 + i%12)
			b.Op3(isa.OpAdd, dst, dst, 13)
		}
	}))
	big := measure(t, loopProgram(t, 20, prog.MinMemSize, func(b *prog.Builder) {
		for i := 0; i < 3000; i++ {
			dst := uint8(1 + i%12)
			b.Op3(isa.OpAdd, dst, dst, 13)
		}
	}))
	if big.L1IHitRate >= 0.999 {
		t.Errorf("large footprint L1I hit rate = %.4f, expected misses", big.L1IHitRate)
	}
	if small.L1IHitRate < 0.99 {
		t.Errorf("small footprint L1I hit rate = %.4f, want ~1", small.L1IHitRate)
	}
	if big.IPC >= small.IPC {
		t.Errorf("I-cache pressure did not reduce IPC: big %.2f vs small %.2f", big.IPC, small.IPC)
	}
}

func BenchmarkCoreSimulation(b *testing.B) {
	bd := prog.NewBuilder(prog.DefaultMemSize, 1)
	entry := bd.NewBlock()
	loop := bd.NewBlock()
	exit := bd.NewBlock()
	bd.SetBlock(entry)
	bd.MovI(15, 20000)
	bd.MovI(14, 0)
	bd.Jmp(loop)
	bd.SetBlock(loop)
	for i := 0; i < 10; i++ {
		bd.Op3(isa.OpAdd, uint8(1+i%8), uint8(1+i%8), 13)
		bd.Load(9, 9, 0)
	}
	bd.AddI(15, 15, -1)
	bd.Branch(isa.OpBne, 15, 14, loop)
	bd.SetBlock(exit)
	bd.Halt()
	p := bd.MustBuild()

	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		core := NewCore(IvyBridge())
		res, err := vm.Run(p, vm.Params{}, core)
		if err != nil {
			b.Fatal(err)
		}
		instr += res.Retired
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
