package hashcore

// One benchmark per table/figure of the paper's evaluation plus the §VI
// ablations. Benchmarks run reduced widget populations so `go test
// -bench=.` stays tractable; cmd/hcbench reproduces the full N=1000 runs
// recorded in EXPERIMENTS.md. Every benchmark reports the figure's
// headline statistic as a custom metric, so the numbers the paper plots
// are visible straight from the bench output.

import (
	"context"
	"math"
	"testing"

	"hashcore/internal/experiments"
	"hashcore/internal/perfprox"
	"hashcore/internal/vm"
)

// benchPopulation caches one reduced widget population across benchmarks
// within a single `go test -bench` process.
var benchPop *experiments.Population

func population(b *testing.B) *experiments.Population {
	b.Helper()
	if benchPop == nil {
		pop, err := experiments.RunPopulation(experiments.Config{N: 30, MasterSeed: 2019})
		if err != nil {
			b.Fatal(err)
		}
		benchPop = pop
	}
	return benchPop
}

// BenchmarkTableI_SeedSplit measures the Table I seed decomposition (and
// asserts its fields by construction elsewhere; see perfprox tests).
func BenchmarkTableI_SeedSplit(b *testing.B) {
	var seed perfprox.Seed
	for i := range seed {
		seed[i] = byte(i)
	}
	var sink uint32
	for i := 0; i < b.N; i++ {
		seed[0] = byte(i)
		f := perfprox.Split(seed)
		sink ^= f.IntALU ^ f.Mem
	}
	_ = sink
}

// BenchmarkFigure1_Pipeline measures the full HashCore evaluation
// (Figure 1: gate -> widget generation -> execution -> gate) on the
// paper's Leela profile.
func BenchmarkFigure1_Pipeline(b *testing.B) {
	h, err := New()
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		input[0], input[1] = byte(i), byte(i>>8)
		if _, err := h.Hash(input); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hashes/s")
}

// BenchmarkHash measures the pooled steady-state hashing path — the
// headline hashes/sec number. Allocations are reported; in steady state
// they must be zero (TestHashZeroAllocSteadyState asserts it).
func BenchmarkHash(b *testing.B) {
	h, err := New()
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		input[0], input[1] = byte(i), byte(i>>8)
		if _, err := h.Hash(input); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hashes/s")
}

// BenchmarkHashSession measures a dedicated session (the miner-worker
// path): pooled overhead removed, everything reused.
func BenchmarkHashSession(b *testing.B) {
	h, err := New()
	if err != nil {
		b.Fatal(err)
	}
	s := h.NewSession()
	input := make([]byte, 80)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		input[0], input[1] = byte(i), byte(i>>8)
		if _, err := s.Hash(input); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "hashes/s")
}

// TestHashZeroAllocSteadyState locks in the zero-allocation pipeline:
// once a session's buffers have reached their high-water capacities,
// hashing must not allocate — through a dedicated session and through
// the pooled public Hash path alike.
func TestHashZeroAllocSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement skipped in -short mode")
	}
	h, err := New()
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("steady-state allocation probe")

	s := h.NewSession()
	for i := 0; i < 3; i++ { // reach high-water buffer capacities
		if _, err := s.Hash(input); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(5, func() {
		if _, err := s.Hash(input); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Session.Hash allocated %.1f objects/op in steady state, want 0", allocs)
	}

	// The pooled path is also allocation-free, but a GC anywhere in the
	// measurement clears the sync.Pool and forces a fresh session, so
	// tolerate one eviction: re-warm and retry before declaring failure.
	// Under the race detector the added GC pressure makes evictions the
	// norm rather than the exception, so the pooled half is skipped there
	// (the per-session assertion above still runs).
	if raceEnabled {
		t.Skip("sync.Pool evictions dominate under the race detector")
	}
	pooled := func() float64 {
		for i := 0; i < 3; i++ { // warm the pool's session
			if _, err := h.Hash(input); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := h.Hash(input); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocs := pooled()
	if allocs != 0 {
		allocs = pooled()
	}
	if allocs != 0 {
		t.Errorf("pooled Hash allocated %.1f objects/op in steady state, want 0", allocs)
	}
}

// BenchmarkFigure2_IPC reproduces Figure 2 at reduced N: the IPC
// distribution of Leela-profile widgets vs. the reference workload on the
// Ivy-Bridge-like simulator.
func BenchmarkFigure2_IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchPop = nil // force a fresh population per iteration
		pop := population(b)
		fig := experiments.Figure2(pop)
		b.ReportMetric(fig.Summary.Mean, "widget-IPC-mean")
		b.ReportMetric(fig.Summary.StdDev, "widget-IPC-std")
		b.ReportMetric(fig.Reference, "reference-IPC")
		b.ReportMetric(fig.KSNormal, "KS-vs-normal")
	}
}

// BenchmarkFigure3_Branch reproduces Figure 3 at reduced N: the
// branch-prediction accuracy distribution vs. the reference.
func BenchmarkFigure3_Branch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pop := population(b)
		fig := experiments.Figure3(pop)
		b.ReportMetric(fig.Summary.Mean, "widget-acc-mean")
		b.ReportMetric(fig.Reference, "reference-acc")
	}
}

// BenchmarkOutputSizes reproduces the §V output-size observation
// (paper: 20-38 KB).
func BenchmarkOutputSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pop := population(b)
		sizes := experiments.OutputSizes(pop)
		b.ReportMetric(sizes.Summary.Min, "min-KB")
		b.ReportMetric(sizes.Summary.Mean, "mean-KB")
		b.ReportMetric(sizes.Summary.Max, "max-KB")
	}
}

// BenchmarkNoiseShrinksBranchFraction reproduces the §V positive-noise
// property: the mean widget branch fraction sits below the profile's.
func BenchmarkNoiseShrinksBranchFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pop := population(b)
		bf := experiments.BranchFractions(pop)
		b.ReportMetric(bf.Summary.Mean, "widget-branch-frac")
		b.ReportMetric(bf.Reference, "profile-branch-frac")
		if !(bf.Summary.Mean < bf.Reference) {
			b.Fatal("positive-noise property violated")
		}
	}
}

// BenchmarkAblation_GenerationVsSelection reproduces the §VI-A trade-off.
func BenchmarkAblation_GenerationVsSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.GenVsSel("leela", []int{16}, 4, vm.Params{})
		if err != nil {
			b.Fatal(err)
		}
		r := results[0]
		b.ReportMetric(r.GenExecFrac*100, "exec%-generation")
		b.ReportMetric(r.SelExecFrac*100, "exec%-selection")
		b.ReportMetric(float64(r.PoolStorage)/1024, "pool-KB")
	}
}

// BenchmarkAblation_RandomXLite reproduces the §VI-C comparison: uniform
// random-program widgets vs. profile-targeted ones.
func BenchmarkAblation_RandomXLite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.RandomXPopulation(6, 7, vm.Params{})
		if err != nil {
			b.Fatal(err)
		}
		pop := population(b)
		fig2 := experiments.Figure2(pop)
		b.ReportMetric(rep.Summary.Mean, "randomx-IPC-mean")
		b.ReportMetric(fig2.Summary.Mean, "hashcore-IPC-mean")
		b.ReportMetric(math.Abs(rep.Summary.Mean-fig2.Reference), "randomx-IPC-gap")
		b.ReportMetric(math.Abs(fig2.Summary.Mean-fig2.Reference), "hashcore-IPC-gap")
	}
}

// BenchmarkAblation_AlternateProfiles exercises §VI-B modularity: hashing
// under a different reference profile.
func BenchmarkAblation_AlternateProfiles(b *testing.B) {
	for _, name := range []string{"exchange2", "lbm"} {
		b.Run(name, func(b *testing.B) {
			h, err := New(WithProfile(name))
			if err != nil {
				b.Fatal(err)
			}
			input := make([]byte, 80)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				input[0] = byte(i)
				if _, err := h.Hash(input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseline_Throughput reproduces the related-work comparison:
// hashes/second for SHA-256d, scrypt, RandomX-lite and HashCore.
func BenchmarkBaseline_Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.BaselineThroughput("leela", 2, vm.Params{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.PerSec, r.Name+"-H/s")
		}
	}
}

// BenchmarkAblation_Predictors compares branch-predictor designs on the
// same widget: no standard predictor family should "solve" HashCore's
// data-dependent branches (else an ASIC could cheapen the front-end).
func BenchmarkAblation_Predictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.PredictorAblation("leela", 99, vm.Params{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			b.ReportMetric(r.Accuracy, string(r.Kind)+"-acc")
		}
	}
}

// BenchmarkMining measures end-to-end mining at a 4-bit demo difficulty.
func BenchmarkMining(b *testing.B) {
	h, err := New()
	if err != nil {
		b.Fatal(err)
	}
	target := TargetWithZeroBits(4)
	for i := 0; i < b.N; i++ {
		prefix := []byte{byte(i), byte(i >> 8), 0xcc}
		if _, err := h.Mine(context.Background(), prefix, target, 2); err != nil {
			b.Fatal(err)
		}
	}
}
