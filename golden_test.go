package hashcore

import (
	"encoding/hex"
	"testing"
)

// Golden digest vectors captured from the pre-optimization pipeline
// (seed commit 2b8d187 plus go.mod). The zero-allocation execution path
// must reproduce these bit-for-bit: the VM doc comment's determinism
// contract is what makes HashCore digests verifiable, so any perf work
// that shifts a single output bit is wrong, not fast.
//
// Each case is (constructor options, input, expected hex digest).
var goldenVectors = []struct {
	name  string
	opts  []Option
	input string
	want  string
}{
	{"leela-default", nil, "", "451387ab376fe735306fc345ad519ec13dd82e42fffaec8698ccca48b7bc14f0"},
	{"leela-default", nil, "abc", "5e1b1d3982d3cd7c62ed235f77441bd2725f59f93017dfd77c150e3a8e07aa12"},
	{"leela-default", nil, "hashcore golden vector 2026", "ef2c4e98c6f365abca4e7c0f377e789b21f334d5a86a8b2816f753edee8a4c6d"},
	{"leela-default", nil, "block header \x00\x01\x02\x03", "bb1b45da29f87ca90aab877eaf7e11b841c9f75394baa762ee2fa1a6652a24d5"},

	{"exchange2-default", []Option{WithProfile("exchange2")}, "", "b238ee801c207219c02a68d66e741d874df4bc2237bdda459e52b9551ac66887"},
	{"exchange2-default", []Option{WithProfile("exchange2")}, "abc", "925f7bd794940ec5670f4b6cff233bd8e6e2b03601ff1275ee7f111e2ce9afe9"},
	{"exchange2-default", []Option{WithProfile("exchange2")}, "hashcore golden vector 2026", "dbe675ef5937143bf0be8ebd492d67e01b9433daf7508f17c4ff5753e977e625"},
	{"exchange2-default", []Option{WithProfile("exchange2")}, "block header \x00\x01\x02\x03", "103fefdf9d3b6ba6cd579d11313241e19be424d354ae445f6d767cb9ec83435c"},

	{"lbm-default", []Option{WithProfile("lbm")}, "", "e2fedfeb03aeb15c2e9e7aa0f43948524bbfcb95a754c4d72157f5a4e48723ec"},
	{"lbm-default", []Option{WithProfile("lbm")}, "abc", "892264855394cafd8e4e422eaff4651cc19491bab41dac0c67988a8db5d9394b"},
	{"lbm-default", []Option{WithProfile("lbm")}, "hashcore golden vector 2026", "c9f2dd44ffb3d90c44e5d6b48736547f22221bed19ef238150f959f9a18e2161"},
	{"lbm-default", []Option{WithProfile("lbm")}, "block header \x00\x01\x02\x03", "d689361b54ab6200f9ad59b2455e5226624e86aace391bd9b58a34ea922994f8"},

	// The source pipeline must agree with the direct pipeline.
	{"leela-srcpipe", []Option{WithSourcePipeline(true)}, "abc", "5e1b1d3982d3cd7c62ed235f77441bd2725f59f93017dfd77c150e3a8e07aa12"},
	// Chained widgets and non-default snapshot intervals exercise the
	// session reuse paths (output buffers of different sizes per widget).
	{"leela-widgets2", []Option{WithWidgets(2)}, "abc", "c743217fd858afc82f5b04da52890738ac3f82f9a4900a94451e29f899baf8e6"},
	{"leela-snap512", []Option{WithSnapshotInterval(512)}, "abc", "1944269f2b0021954c2a97fde257a565c015b8b44c735b69e0fca3fc2b794784"},
}

// goldenBackends is the set of execution engines every golden vector is
// replayed through. The digests were captured from the interpreter; the
// native backend must reproduce them bit-for-bit, so the same table runs
// under both (native skipped on platforms without the code generator).
func goldenBackends(t *testing.T) []string {
	t.Helper()
	if !NativeBackendSupported() {
		t.Log("native backend unsupported on this platform; interp only")
		return []string{"interp"}
	}
	return []string{"interp", "native"}
}

// TestGoldenDigests locks the determinism contract across the
// zero-allocation refactor and the native code backend: every digest must
// match the value the pre-refactor interpreter pipeline produced, under
// every execution engine.
func TestGoldenDigests(t *testing.T) {
	for _, backend := range goldenBackends(t) {
		t.Run(backend, func(t *testing.T) {
			hashers := map[string]*Hasher{}
			for _, v := range goldenVectors {
				h, ok := hashers[v.name]
				if !ok {
					var err error
					h, err = New(append([]Option{WithBackend(backend)}, v.opts...)...)
					if err != nil {
						t.Fatalf("%s: New: %v", v.name, err)
					}
					hashers[v.name] = h
				}
				got, err := h.Hash([]byte(v.input))
				if err != nil {
					t.Fatalf("%s/%q: Hash: %v", v.name, v.input, err)
				}
				if hex.EncodeToString(got[:]) != v.want {
					t.Errorf("%s/%q:\n got %x\nwant %s", v.name, v.input, got, v.want)
				}
			}
		})
	}
}

// TestGoldenDigestsRepeat hashes the same vectors twice through each
// hasher, interleaved, so buffer reuse inside pooled sessions is
// exercised with outputs of different sizes between calls.
func TestGoldenDigestsRepeat(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat pass skipped in -short mode")
	}
	h, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for _, v := range goldenVectors {
			if v.name != "leela-default" {
				continue
			}
			got, err := h.Hash([]byte(v.input))
			if err != nil {
				t.Fatal(err)
			}
			if hex.EncodeToString(got[:]) != v.want {
				t.Errorf("round %d %q: got %x want %s", round, v.input, got, v.want)
			}
		}
	}
}
