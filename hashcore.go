// Package hashcore is a Go implementation of HashCore, the Proof-of-Work
// function of "HashCore: Proof-of-Work Functions for General Purpose
// Processors" (Georghiades, Flolid, Vishwanath — ICDCS 2019).
//
// HashCore hashes an input by (1) passing it through a hash gate
// (SHA-256) to obtain a 256-bit seed, (2) pseudo-randomly generating a
// short program — a widget — whose execution profile matches a reference
// CPU workload perturbed by that seed ("inverted benchmarking"),
// (3) executing the widget and collecting its register-snapshot output,
// and (4) gating seed‖output into the final digest:
//
//	H(x) = G(s || W(s)),   s = G(x)
//
// Collision resistance of H reduces to that of G (Theorem 1 of the paper)
// regardless of how widgets behave.
//
// This reproduction runs widgets on a deterministic synthetic machine
// rather than native x86 (see DESIGN.md for the substitution argument),
// so digests are portable and verifiable across platforms.
//
// # Quick start
//
//	h, err := hashcore.New()                    // Leela profile, defaults
//	if err != nil { ... }
//	digest := h.Sum([]byte("block header"))
//
// Use WithProfile to target another reference workload, and Mine /
// VerifyNonce for blockchain-style usage.
package hashcore

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"os"

	"hashcore/internal/core"
	"hashcore/internal/gate"
	"hashcore/internal/perfprox"
	"hashcore/internal/pow"
	"hashcore/internal/profile"
	"hashcore/internal/telemetry"
	"hashcore/internal/vm"
	"hashcore/internal/workload"
)

// DigestSize is the digest size in bytes.
const DigestSize = core.DigestSize

// Digest is a HashCore digest.
type Digest = core.Digest

// config collects the functional-option state.
type config struct {
	profileName string
	prof        *profile.Profile
	widgets     int
	sourcePath  bool
	snapshot    uint64
	noise       float64
	loopTrips   int
	backend     vm.Backend
	metrics     *telemetry.Registry
	journal     *telemetry.Journal
}

// Option configures New.
type Option func(*config) error

// WithProfile selects a built-in reference workload profile by name
// (see Profiles). The default is "leela", the workload the paper's
// experiments use.
func WithProfile(name string) Option {
	return func(c *config) error {
		c.profileName = name
		return nil
	}
}

// WithCustomProfile supplies a caller-constructed profile (advanced use:
// targeting a different GPP per the paper's §VI-B is done by swapping the
// profile).
func WithCustomProfile(p *profile.Profile) Option {
	return func(c *config) error {
		if p == nil {
			return errors.New("hashcore: nil profile")
		}
		c.prof = p.Clone()
		return nil
	}
}

// WithWidgets chains n widgets sequentially per hash (default 1, as in
// the paper's Figure 1; the paper notes multiple widgets are possible).
func WithWidgets(n int) Option {
	return func(c *config) error {
		if n < 1 || n > 64 {
			return fmt.Errorf("hashcore: widget count %d out of range [1,64]", n)
		}
		c.widgets = n
		return nil
	}
}

// WithSourcePipeline routes every hash through the textual widget source
// and the assembler — the paper-faithful three-stage pipeline — at a small
// speed cost. Results are bit-identical either way.
func WithSourcePipeline(enabled bool) Option {
	return func(c *config) error {
		c.sourcePath = enabled
		return nil
	}
}

// WithSnapshotInterval overrides the register-snapshot interval (retired
// instructions between snapshots). Smaller intervals produce larger widget
// outputs. The default (2048) lands outputs in the paper's 20-38 KB band.
func WithSnapshotInterval(interval uint64) Option {
	return func(c *config) error {
		if interval == 0 {
			return errors.New("hashcore: snapshot interval must be positive")
		}
		c.snapshot = interval
		return nil
	}
}

// WithNoise overrides the maximum fractional positive noise the hash seed
// adds to widget instruction-class budgets (default 0.5).
func WithNoise(noise float64) Option {
	return func(c *config) error {
		if noise < 0 || noise > 4 {
			return fmt.Errorf("hashcore: noise %v out of range [0,4]", noise)
		}
		c.noise = noise
		return nil
	}
}

// WithLoopTrips overrides the widget outer-loop trip count (default 64),
// trading static code footprint against per-iteration work.
func WithLoopTrips(trips int) Option {
	return func(c *config) error {
		if trips < 2 || trips > 1<<16 {
			return fmt.Errorf("hashcore: loop trips %d out of range", trips)
		}
		c.loopTrips = trips
		return nil
	}
}

// WithBackend selects the widget execution engine: "auto" (the default —
// native machine code where the platform supports it, the fused
// interpreter elsewhere), "native" or "interp". Digests are bit-identical
// across backends; only throughput differs. The HASHCORE_BACKEND
// environment variable, when set, overrides this option — an operational
// escape hatch to force the interpreter fleet-wide without a rebuild.
func WithBackend(mode string) Option {
	return func(c *config) error {
		b, err := vm.ParseBackend(mode)
		if err != nil {
			return fmt.Errorf("hashcore: %w", err)
		}
		c.backend = b
		return nil
	}
}

// NativeBackendSupported reports whether this platform can execute
// widgets as native machine code ("auto" and "native" fall back to the
// interpreter elsewhere).
func NativeBackendSupported() bool { return vm.NativeSupported() }

// WithJournal routes structured events (currently jit_fallback, emitted
// once when a native-capable backend falls back to the interpreter) to j.
// A nil journal disables event emission (the default).
func WithJournal(j *telemetry.Journal) Option {
	return func(c *config) error {
		c.journal = j
		return nil
	}
}

// WithTelemetry instruments every hash through reg: latency histograms
// (end-to-end plus the gen/exec phase split), retired-instruction and
// fusion-ratio counters — the hashcore_* metric family (DESIGN.md §12).
// The record path is allocation-free and adds only clock reads and
// atomic updates, so hashing throughput is unaffected within noise
// (hcbench's telemetry target measures the delta). A nil reg disables
// instrumentation (the default).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) error {
		c.metrics = reg
		return nil
	}
}

// Hasher is an instantiated HashCore function. It is immutable and safe
// for concurrent use, and satisfies the PoW-hasher shape used by Mine.
type Hasher struct {
	f *core.Func
}

// New builds a HashCore hasher. With no options it targets the Leela
// profile with the paper's defaults.
func New(opts ...Option) (*Hasher, error) {
	cfg := config{profileName: "leela"}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if env := os.Getenv("HASHCORE_BACKEND"); env != "" {
		b, err := vm.ParseBackend(env)
		if err != nil {
			return nil, fmt.Errorf("hashcore: HASHCORE_BACKEND: %w", err)
		}
		cfg.backend = b
	}
	prof := cfg.prof
	if prof == nil {
		w, err := workload.ByName(cfg.profileName)
		if err != nil {
			return nil, fmt.Errorf("hashcore: %w", err)
		}
		prof = w.Profile
	}
	f, err := core.New(core.Options{
		Gate:    gate.SHA256{},
		Profile: prof,
		GenParams: perfprox.Params{
			Noise:     cfg.noise,
			LoopTrips: cfg.loopTrips,
		},
		VMParams:          vm.Params{SnapshotInterval: cfg.snapshot},
		Widgets:           cfg.widgets,
		UseSourcePipeline: cfg.sourcePath,
		Backend:           cfg.backend,
		Metrics:           cfg.metrics,
		Journal:           cfg.journal,
	})
	if err != nil {
		return nil, err
	}
	return &Hasher{f: f}, nil
}

// Hash computes the HashCore digest of input. Calls are serviced from an
// internal pool of execution contexts, so repeated hashing allocates
// nothing in the steady state.
func (h *Hasher) Hash(input []byte) (Digest, error) { return h.f.Hash(input) }

// Session is a single-goroutine hashing context: it owns the widget
// generator scratch, the VM and all buffers, reusing them across Hash
// calls. Digests are identical to Hasher.Hash; the difference is purely
// that a Session skips the internal pool round-trip, which matters in
// tight per-core loops (the miner holds one per worker). A Session is
// not safe for concurrent use.
type Session struct {
	s *core.Session
}

// NewSession returns a dedicated hashing context for this hasher.
func (h *Hasher) NewSession() *Session {
	return &Session{s: h.f.NewSession()}
}

// Hash computes the HashCore digest of input using the session's
// reusable state.
func (s *Session) Hash(input []byte) (Digest, error) { return s.s.Hash(input) }

// Close releases the session's background resources (the scratch-memory
// fill helper that overlaps memory preparation with widget generation).
// It is idempotent; the session must not be used afterwards. Sessions
// that are garbage-collected without Close release the helper through a
// finalizer, so Close is an optimization for deterministic shutdown, not
// a leak guard.
func (s *Session) Close() { s.s.Close() }

// PhaseTimings accumulates the generation/execution wall-clock split of
// the widget pipeline across HashTimed calls (see core.PhaseTimings). The
// benchmark harness uses it to attribute hash latency to the generator
// versus the execution engine.
type PhaseTimings = core.PhaseTimings

// HashTimed is Session.Hash with per-phase instrumentation accumulated
// into t: widget-generation and VM-execution nanoseconds plus retired
// widget instructions. Digests are identical to Hash; the overhead is a
// few clock reads per widget.
func (s *Session) HashTimed(input []byte, t *PhaseTimings) (Digest, error) {
	return s.s.HashTimed(input, t)
}

// Sum is Hash without the error return; it panics only on internal
// invariant violations (never on any input value).
func (h *Hasher) Sum(input []byte) Digest { return h.f.Sum(input) }

// Name identifies the hasher, e.g. "hashcore-leela".
func (h *Hasher) Name() string { return "hashcore-" + h.f.ProfileName() }

// ProfileName returns the target profile's name.
func (h *Hasher) ProfileName() string { return h.f.ProfileName() }

// WidgetSource returns the assembly text of the widget that input selects
// — the reproduction's analogue of the generated C program.
func (h *Hasher) WidgetSource(input []byte) (string, error) {
	tr, err := h.f.Trace(input)
	if err != nil {
		return "", err
	}
	return tr.Source, nil
}

// Inspection describes one hash evaluation's intermediates.
type Inspection struct {
	// Seed is the hash seed G(input).
	Seed [32]byte
	// StaticInstructions is the widget's static code size.
	StaticInstructions int
	// DynamicInstructions is the retired instruction count.
	DynamicInstructions uint64
	// OutputBytes is the widget output (snapshot stream) size.
	OutputBytes int
	// Digest is the final HashCore digest.
	Digest Digest
}

// Inspect runs the pipeline for input and reports its intermediates.
func (h *Hasher) Inspect(input []byte) (*Inspection, error) {
	tr, err := h.f.Trace(input)
	if err != nil {
		return nil, err
	}
	return &Inspection{
		Seed:                tr.Seed,
		StaticInstructions:  tr.Widget.NumInstrs(),
		DynamicInstructions: tr.Result.Retired,
		OutputBytes:         len(tr.Result.Output),
		Digest:              tr.Digest,
	}, nil
}

// Profiles lists the built-in reference workload profiles.
func Profiles() []string { return workload.Names() }

// MineResult is a successful nonce search.
type MineResult struct {
	Nonce    uint64
	Digest   Digest
	Attempts uint64
}

// TargetWithZeroBits returns a difficulty target requiring roughly 2^bits
// hash evaluations (bits leading zero bits in the digest).
func TargetWithZeroBits(bits uint) [32]byte {
	if bits > 255 {
		bits = 255
	}
	v := new(big.Int).Rsh(new(big.Int).Lsh(big.NewInt(1), 256), bits)
	v.Sub(v, big.NewInt(1))
	t := pow.FromBig(v)
	return [32]byte(t)
}

// powAdapter adapts Hasher to pow.SessionHasher, so miner workers each
// run on a dedicated execution context.
type powAdapter struct{ h *Hasher }

func (a powAdapter) Hash(header []byte) ([32]byte, error) { return a.h.Hash(header) }
func (a powAdapter) Name() string                         { return a.h.Name() }

func (a powAdapter) NewSession() pow.Hasher {
	return sessionAdapter{s: a.h.NewSession(), name: a.h.Name()}
}

// sessionAdapter adapts Session to pow.Hasher for one miner worker.
type sessionAdapter struct {
	s    *Session
	name string
}

func (a sessionAdapter) Hash(header []byte) ([32]byte, error) { return a.s.Hash(header) }
func (a sessionAdapter) Name() string                         { return a.name }

// ErrExhausted is returned by MineRange when the attempt budget was spent
// without finding a valid digest.
var ErrExhausted = pow.ErrExhausted

// Mine searches for a nonce such that Hash(prefix || nonce_le64) meets the
// target, using the given number of worker goroutines. It returns early
// with ctx.Err() on cancellation.
func (h *Hasher) Mine(ctx context.Context, prefix []byte, target [32]byte, workers int) (MineResult, error) {
	return h.MineRange(ctx, prefix, target, workers, 0, 0)
}

// MineRange is Mine with an explicit nonce window: the search starts at
// start and evaluates at most maxAttempts nonces (0 means unbounded),
// returning ErrExhausted when the budget is spent without a hit. This is
// how a pool miner works its assigned slice of the nonce space: with
// budget end-start the search stays (approximately, up to worker stride
// at the window edge) within [start, end). Result.Attempts is the exact
// number of hash evaluations performed.
func (h *Hasher) MineRange(ctx context.Context, prefix []byte, target [32]byte, workers int, start, maxAttempts uint64) (MineResult, error) {
	miner := pow.NewMiner(powAdapter{h}, workers)
	res, err := miner.Mine(ctx, prefix, pow.Target(target), start, maxAttempts)
	if err != nil {
		return MineResult{}, err
	}
	return MineResult{Nonce: res.Nonce, Digest: res.Digest, Attempts: res.Attempts}, nil
}

// VerifyNonce checks a previously mined nonce — the cheap path a
// validating node runs.
func (h *Hasher) VerifyNonce(prefix []byte, nonce uint64, target [32]byte) (bool, error) {
	return pow.Verify(powAdapter{h}, prefix, nonce, pow.Target(target))
}
