//go:build race

package hashcore

// raceEnabled reports whether the race detector is compiled in; test
// assertions about allocation counts consult it because the detector's
// added GC pressure evicts sync.Pool contents mid-measurement.
const raceEnabled = true
