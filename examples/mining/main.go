// Mining: use HashCore as the PoW function of a block header search, then
// verify the found nonce the way a validating node would.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hashcore"
)

func main() {
	h, err := hashcore.New(hashcore.WithProfile("leela"))
	if err != nil {
		log.Fatal(err)
	}

	// Each HashCore evaluation takes milliseconds by design (that IS the
	// work), so a demo difficulty of 4 leading zero bits (~16 expected
	// evaluations) completes in seconds.
	const difficultyBits = 4
	target := hashcore.TargetWithZeroBits(difficultyBits)
	header := []byte("block 42 | prev 00ab..cd | merkle 77ee..ff |")

	fmt.Printf("mining %d-bit difficulty with %s, 2 workers...\n", difficultyBits, h.Name())
	start := time.Now()
	res, err := h.Mine(context.Background(), header, target, 2)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("found nonce %d after %d attempts in %s (%.1f H/s)\n",
		res.Nonce, res.Attempts, elapsed.Round(time.Millisecond),
		float64(res.Attempts)/elapsed.Seconds())
	fmt.Printf("digest: %x\n", res.Digest)

	// Verification replays a single hash — cheap relative to the search.
	start = time.Now()
	ok, err := h.VerifyNonce(header, res.Nonce, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification: %v in %s\n", ok, time.Since(start).Round(time.Millisecond))
	if !ok {
		log.Fatal("mined nonce failed verification")
	}
}
