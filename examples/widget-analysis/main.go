// Widget analysis: reproduce the paper's core experiment at demo scale —
// generate a population of widgets from the Leela profile, run each on
// the Ivy-Bridge-like simulator, and compare the IPC and branch-prediction
// distributions against the reference workload (Figures 2 and 3).
//
// Run cmd/hcbench with -n 1000 for the full-scale version.
package main

import (
	"fmt"
	"log"
	"math"

	"hashcore/internal/experiments"
)

func main() {
	const n = 60 // demo-scale population (paper: 1000)
	fmt.Printf("simulating %d Leela-profile widgets cycle-by-cycle...\n\n", n)

	pop, err := experiments.RunPopulation(experiments.Config{N: n, MasterSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %s\n\n", pop.Elapsed.Round(1e7))

	fig2 := experiments.Figure2(pop)
	fmt.Println(fig2.Render())

	fig3 := experiments.Figure3(pop)
	fmt.Println(fig3.Render())

	sizes := experiments.OutputSizes(pop)
	fmt.Println(sizes.Render())

	fmt.Println("paper shape checks:")
	fmt.Printf("  IPC distribution roughly Gaussian:     KS=%.3f (consistent below ~%.3f)\n",
		fig2.KSNormal, 1.36/math.Sqrt(n))
	fmt.Printf("  branch accuracy near reference:        |%.3f - %.3f| = %.3f\n",
		fig3.Summary.Mean, fig3.Reference, math.Abs(fig3.Summary.Mean-fig3.Reference))
	fmt.Printf("  output sizes within the 20-38 KB band: [%.1f, %.1f] KB\n",
		sizes.Summary.Min, sizes.Summary.Max)
}
