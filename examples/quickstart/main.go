// Quickstart: compute HashCore digests and inspect what one evaluation
// actually does (seed -> widget -> execution -> digest).
package main

import (
	"fmt"
	"log"

	"hashcore"
)

func main() {
	// A default hasher targets the Leela profile, as in the paper's
	// experiments.
	h, err := hashcore.New()
	if err != nil {
		log.Fatal(err)
	}

	input := []byte("my block header")
	digest := h.Sum(input)
	fmt.Printf("HashCore(%q) = %x\n", input, digest)

	// Digests are deterministic: any verifier recomputes the same value.
	if h.Sum(input) != digest {
		log.Fatal("determinism violated?!")
	}
	fmt.Println("recomputed digest matches (verifiable PoW)")

	// Look inside the pipeline: the input picked a seed, the seed
	// generated a widget, the widget ran to completion.
	info, err := h.Inspect(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seed:                 %x...\n", info.Seed[:8])
	fmt.Printf("widget static size:   %d instructions\n", info.StaticInstructions)
	fmt.Printf("widget dynamic size:  %d instructions executed\n", info.DynamicInstructions)
	fmt.Printf("widget output:        %.1f KB of register snapshots\n", float64(info.OutputBytes)/1024)

	// A different input selects a completely different widget.
	other, err := h.Inspect([]byte("another header"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("different input -> different widget (dynamic %d vs %d) and digest %x...\n",
		info.DynamicInstructions, other.DynamicInstructions, other.Digest[:8])
}
