// Profile inversion: the full inverted-benchmarking loop on a workload
// other than Leela, demonstrating the paper's §VI-B modularity claim
// ("modifying HashCore to target alternate architectures would require
// only that a new ... widget generator script be developed").
//
// We (1) measure a reference workload, (2) generate widgets from its
// declared profile, (3) measure the widgets, and (4) compare signatures.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"hashcore/internal/isa"
	"hashcore/internal/perfprox"
	"hashcore/internal/profile"
	"hashcore/internal/uarch"
	"hashcore/internal/vm"
	"hashcore/internal/workload"
)

func main() {
	for _, name := range []string{"lbm", "x264"} {
		if err := invert(name); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func invert(name string) error {
	w, err := workload.ByName(name)
	if err != nil {
		return err
	}
	fmt.Printf("== inverting %s (%s) ==\n", w.Name, w.Description)

	// 1. Measure the reference workload on the simulated core.
	refProg, err := w.Build()
	if err != nil {
		return err
	}
	ref, err := profile.Measure(w.Name, refProg, uarch.IvyBridge(), vm.Params{})
	if err != nil {
		return err
	}
	fmt.Printf("reference: IPC=%.3f branch-acc=%.3f loads=%.2f fp=%.2f vector=%.2f\n",
		ref.IPC, ref.BranchAccuracy,
		ref.Mix[isa.ClassLoad], ref.Mix[isa.ClassFPALU], ref.Mix[isa.ClassVector])

	// 2-3. Generate a few widgets from the profile and measure them.
	gen, err := perfprox.NewGenerator(w.Profile, perfprox.Params{})
	if err != nil {
		return err
	}
	const n = 8
	var ipc, acc, mixDist float64
	for i := 0; i < n; i++ {
		var seed perfprox.Seed
		binary.BigEndian.PutUint64(seed[24:], uint64(i)*977)
		binary.BigEndian.PutUint64(seed[0:], uint64(i)*131)
		p, err := gen.Generate(seed)
		if err != nil {
			return err
		}
		r, err := profile.Measure("widget", p, uarch.IvyBridge(), vm.Params{})
		if err != nil {
			return err
		}
		ipc += r.IPC
		acc += r.BranchAccuracy
		mixDist += profile.MixDistance(r.Mix, w.Profile.Mix)
	}

	// 4. Compare.
	fmt.Printf("widgets:   IPC=%.3f branch-acc=%.3f (means of %d)\n", ipc/n, acc/n, n)
	fmt.Printf("mean instruction-mix L1 distance from target profile: %.3f\n", mixDist/n)
	return nil
}
