// Useful widgets (paper §VI-E): "philanthropic or otherwise useful
// workloads could be injected as widgets into the HashCore framework".
//
// This example instantiates that idea with the machinery already in the
// repository: a fixed "useful" computation (here the lbm fluid-dynamics
// stencil standing in for, say, protein folding) becomes the widget via a
// single-entry selection pool. Each hash seed reinitializes the widget's
// memory, so the PoW search keeps evaluating the useful kernel on fresh
// inputs while remaining a verifiable, seed-dependent hash:
//
//	H(x) = G( s || UsefulWidget_s(s) ),   s = G(x)
//
// Collision resistance still holds by Theorem 1 — it never depended on
// what the widget computes.
package main

import (
	"fmt"
	"log"

	"hashcore/internal/perfprox"
	"hashcore/internal/selection"
	"hashcore/internal/vm"
	"hashcore/internal/workload"
)

func main() {
	// The "useful" kernel: the lbm reference workload (an FP stencil).
	w, err := workload.ByName("lbm")
	if err != nil {
		log.Fatal(err)
	}

	// A pool of size 1 pins the widget to a fixed program; the hash seed
	// still re-seeds its working memory, so outputs are seed-dependent.
	pool, err := selection.NewPool(w.Profile, perfprox.Params{}, 1, 0xfeed, nil, vm.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("useful-widget PoW over %q (%s)\n", w.Name, w.Description)
	fmt.Printf("fixed widget storage: %.1f KB\n\n", float64(pool.StorageBytes())/1024)

	// Hash a few headers: every evaluation runs the useful kernel on a
	// different seed-derived input.
	for i := 0; i < 3; i++ {
		header := fmt.Sprintf("block header %d", i)
		digest, err := pool.Hash([]byte(header))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("H(%q) = %x...\n", header, digest[:12])
	}

	fmt.Println("\ncaveats (as the paper notes): fixing the widget re-opens the")
	fmt.Println("per-widget ASIC surface of §VI-A, and any external reward for the")
	fmt.Println("useful output needs its own security analysis.")
}
