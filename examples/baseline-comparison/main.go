// Baseline comparison: race HashCore against the related-work PoW
// functions (§II of the paper) — SHA-256d (Bitcoin), scrypt (memory-hard)
// and a RandomX-style uniform random-program VM — and show the §VI-A
// generation-vs-selection trade-off.
package main

import (
	"fmt"
	"log"

	"hashcore/internal/experiments"
	"hashcore/internal/vm"
)

func main() {
	fmt.Println("== PoW function throughput (single goroutine) ==")
	fmt.Println("(HashCore being ~10^5 slower per hash than SHA-256d is the design:")
	fmt.Println(" the per-hash work is a whole pseudo-random CPU workload)")
	results, err := experiments.BaselineThroughput("leela", 10, vm.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderThroughput(results))

	fmt.Println("== generation vs selection (paper §VI-A) ==")
	gvs, err := experiments.GenVsSel("leela", []int{16, 64}, 5, vm.Params{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.RenderGenVsSel(gvs))
	fmt.Println("selection trades storage (pool bytes) for a higher execution share per hash,")
	fmt.Println("exactly the trade-off the paper describes.")
}
