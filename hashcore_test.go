package hashcore

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hashcore/internal/isa"
	"hashcore/internal/profile"
)

// fastOpts builds a hasher with a small custom profile so public-API tests
// stay quick.
func fastOpts() Option {
	return WithCustomProfile(&profile.Profile{
		Name: "fast",
		Mix: map[isa.Class]float64{
			isa.ClassIntALU: 0.55,
			isa.ClassIntMul: 0.05,
			isa.ClassFPALU:  0.05,
			isa.ClassLoad:   0.12,
			isa.ClassStore:  0.05,
			isa.ClassBranch: 0.15,
			isa.ClassVector: 0.03,
		},
		BranchTaken: 0.6, BranchDataDep: 0.4, BranchBias: 0.5,
		MemSequential: 0.4, MemStrided: 0.2, MemRandom: 0.3, MemPointerChase: 0.1,
		WorkingSet: 4 << 10, BlockMean: 5, BlockStd: 2, DepDist: 3,
		TargetDynamic: 2000,
	})
}

func TestNewDefaults(t *testing.T) {
	h, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if h.ProfileName() != "leela" {
		t.Errorf("default profile = %q, want leela", h.ProfileName())
	}
	if h.Name() != "hashcore-leela" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestOptionValidation(t *testing.T) {
	cases := map[string][]Option{
		"unknown profile": {WithProfile("nope")},
		"nil profile":     {WithCustomProfile(nil)},
		"bad widgets":     {WithWidgets(0)},
		"bad snapshot":    {WithSnapshotInterval(0)},
		"bad noise":       {WithNoise(-1)},
		"bad loop trips":  {WithLoopTrips(1)},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := New(opts...); err == nil {
				t.Error("invalid option accepted")
			}
		})
	}
}

func TestSumDeterministicAcrossInstances(t *testing.T) {
	h1, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("the same input")
	if h1.Sum(in) != h2.Sum(in) {
		t.Fatal("two identically configured hashers disagree")
	}
}

func TestProfilesListsWorkloads(t *testing.T) {
	names := Profiles()
	if len(names) < 6 {
		t.Fatalf("Profiles() = %v", names)
	}
	found := false
	for _, n := range names {
		if n == "leela" {
			found = true
		}
	}
	if !found {
		t.Error("leela missing from Profiles()")
	}
}

func TestWidgetSourceIsCompilableText(t *testing.T) {
	h, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	src, err := h.WidgetSource([]byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".mem", ".block 0", "halt"} {
		if !strings.Contains(src, want) {
			t.Errorf("widget source missing %q", want)
		}
	}
}

func TestInspect(t *testing.T) {
	h, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	info, err := h.Inspect([]byte("header"))
	if err != nil {
		t.Fatal(err)
	}
	if info.StaticInstructions == 0 || info.DynamicInstructions == 0 || info.OutputBytes == 0 {
		t.Errorf("inspection has empty fields: %+v", info)
	}
	if got := h.Sum([]byte("header")); got != info.Digest {
		t.Error("Inspect digest != Sum digest")
	}
}

func TestMineAndVerifyNonce(t *testing.T) {
	h, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	target := TargetWithZeroBits(4) // ~16 expected attempts
	res, err := h.Mine(context.Background(), []byte("block"), target, 2)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := h.VerifyNonce([]byte("block"), res.Nonce, target)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("mined nonce failed verification")
	}
	ok, err = h.VerifyNonce([]byte("block"), res.Nonce+1, target)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong nonce verified (very unlikely)")
	}
}

func TestMineRangeRespectsWindow(t *testing.T) {
	h, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// An impossible target with a small budget must spend exactly the
	// budget and report exhaustion — the contract a pool client's
	// assigned nonce window relies on.
	var impossible [32]byte
	const budget = 40
	_, err = h.MineRange(context.Background(), []byte("win"), impossible, 2, 1000, budget)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}

	// A findable target inside the window: the nonce must come from at or
	// after the window start, and the result must verify.
	target := TargetWithZeroBits(4) // ~16 expected attempts
	const start = 1 << 20
	res, err := h.MineRange(context.Background(), []byte("win"), target, 2, start, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nonce < start {
		t.Errorf("nonce %d below window start %d", res.Nonce, start)
	}
	ok, err := h.VerifyNonce([]byte("win"), res.Nonce, target)
	if err != nil || !ok {
		t.Fatalf("windowed nonce failed verification: ok=%v err=%v", ok, err)
	}
	if res.Attempts == 0 {
		t.Error("no attempts recorded")
	}
}

func TestMineCancellation(t *testing.T) {
	h, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var impossible [32]byte // zero target
	if _, err := h.Mine(ctx, []byte("x"), impossible, 1); err == nil {
		t.Fatal("cancelled mine returned success")
	}
}

func TestTargetWithZeroBits(t *testing.T) {
	t0 := TargetWithZeroBits(0)
	if t0[0] == 0 {
		t.Error("0-bit target should be near max")
	}
	t8 := TargetWithZeroBits(8)
	if t8[0] != 0 || t8[1] != 0xff {
		t.Errorf("8-bit target = %x", t8[:4])
	}
	if TargetWithZeroBits(300) == ([32]byte{}) {
		t.Error("clamped target should be non-zero")
	}
}

func TestWidgetChainingOption(t *testing.T) {
	h1, err := New(fastOpts(), WithWidgets(1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := New(fastOpts(), WithWidgets(2))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("chained")
	if h1.Sum(in) == h2.Sum(in) {
		t.Fatal("widget chaining had no effect")
	}
}

func TestSourcePipelineOption(t *testing.T) {
	direct, err := New(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(fastOpts(), WithSourcePipeline(true))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("path equivalence")
	if direct.Sum(in) != src.Sum(in) {
		t.Fatal("source pipeline changed the digest")
	}
}

func TestSnapshotIntervalChangesOutputSize(t *testing.T) {
	coarse, err := New(fastOpts(), WithSnapshotInterval(4096))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := New(fastOpts(), WithSnapshotInterval(256))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("x")
	ci, err := coarse.Inspect(in)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := fine.Inspect(in)
	if err != nil {
		t.Fatal(err)
	}
	if fi.OutputBytes <= ci.OutputBytes {
		t.Errorf("finer snapshots should grow output: %d vs %d", fi.OutputBytes, ci.OutputBytes)
	}
}
